//! Per-thread redundant-check elimination — the software analogue of the
//! paper's Section 5 LLC-ownership filter.
//!
//! In hardware, CLEAN skips the epoch check whenever the LLC already
//! holds the line in the modified state for the issuing core: nobody else
//! can have written it since this core last published, so re-checking is
//! provably redundant. Software has no coherence directory, but it has an
//! equivalent invariant: once a thread has *successfully published its
//! current epoch* over a byte range, every byte in that range still holds
//! exactly that epoch for as long as the thread's epoch does not change —
//! any ordered overwrite requires this thread to release (which bumps its
//! epoch and invalidates the entry), and any racy overwrite raises the
//! race exception *before* mutating shadow state. See DESIGN.md
//! ("SFR write-set filter") for the full soundness argument.
//!
//! [`SfrWriteFilter`] is a small direct-mapped table of such ranges.
//! Entries are tagged with the publishing epoch and the shadow reset
//! generation, so they self-invalidate on epoch increments and on
//! deterministic resets without any flush being strictly required; the
//! explicit [`clear`](SfrWriteFilter::clear) on sync operations merely
//! keeps the table from carrying dead weight across SFRs.

use crate::shadow::ShadowPageCache;

/// Number of direct-mapped filter slots. 128 slots × 24 B ≈ 3 KiB per
/// thread — small enough to stay L1-resident next to the thread's stack.
pub const FILTER_SLOTS: usize = 128;

/// Number of growable *range* slots used for plan-coalesced sweeps. A
/// strided writer occupies exactly one range slot per planned region, so
/// a handful suffice.
pub const RANGE_SLOTS: usize = 8;

#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    base: usize,
    /// Covered length in bytes; 0 marks an empty slot.
    len: u32,
    /// Raw epoch the owning thread held when it published this range.
    epoch: u32,
    /// Shadow reset generation the publication happened under.
    generation: u64,
}

/// A growable published range for plan-coalesced strided sweeps. Unlike
/// the direct-mapped [`Slot`]s (whose index is a function of the access
/// address, so a sweep thrashes one slot per 8-byte step), a range slot
/// *extends* when the thread's next write starts exactly where the last
/// one ended — the defining shape of a sequential sweep.
#[derive(Debug, Clone, Copy, Default)]
struct RangeSlot {
    base: usize,
    /// Exclusive end; `base == end` marks an empty slot.
    end: usize,
    epoch: u32,
    generation: u64,
}

/// A direct-mapped per-thread table of byte ranges the thread has already
/// published under its current epoch.
///
/// Not shared: each thread owns its own filter, so lookups and inserts
/// are plain (non-atomic) loads and stores.
#[derive(Debug)]
pub struct SfrWriteFilter {
    slots: [Slot; FILTER_SLOTS],
    ranges: [RangeSlot; RANGE_SLOTS],
    /// Round-robin victim cursor for range-slot allocation.
    range_victim: usize,
}

impl Default for SfrWriteFilter {
    fn default() -> Self {
        SfrWriteFilter {
            slots: [Slot::default(); FILTER_SLOTS],
            ranges: [RangeSlot::default(); RANGE_SLOTS],
            range_victim: 0,
        }
    }
}

impl SfrWriteFilter {
    /// Creates an empty filter.
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    fn index(addr: usize) -> usize {
        (addr >> 3) & (FILTER_SLOTS - 1)
    }

    /// Returns true if `[addr, addr + size)` is fully covered by an entry
    /// published under exactly (`epoch_raw`, `generation`).
    ///
    /// A hit means the full check is provably redundant: every covered
    /// byte still holds `epoch_raw` in shadow memory, so a read check
    /// passes without updates and a write check takes the
    /// `epoch == newEpoch` skip path.
    #[inline]
    pub fn covers(&self, addr: usize, size: usize, epoch_raw: u32, generation: u64) -> bool {
        let s = &self.slots[Self::index(addr)];
        s.len != 0
            && s.epoch == epoch_raw
            && s.generation == generation
            && s.base <= addr
            && addr + size <= s.base + s.len as usize
    }

    /// Records that the owning thread published `epoch_raw` over
    /// `[addr, addr + size)` under reset generation `generation`.
    ///
    /// Call only after a *successful, complete* write check — a failed or
    /// partial publication must not be cached.
    #[inline]
    pub fn insert(&mut self, addr: usize, size: usize, epoch_raw: u32, generation: u64) {
        self.slots[Self::index(addr)] = Slot {
            base: addr,
            len: size.min(u32::MAX as usize) as u32,
            epoch: epoch_raw,
            generation,
        };
    }

    /// Returns true if `[addr, addr + size)` is fully covered by a
    /// *range* slot published under exactly (`epoch_raw`, `generation`).
    /// Same soundness argument as [`covers`](Self::covers); the entries
    /// are just associatively probed and growable.
    #[inline]
    pub fn covers_range(&self, addr: usize, size: usize, epoch_raw: u32, generation: u64) -> bool {
        self.ranges.iter().any(|r| {
            r.end > r.base
                && r.epoch == epoch_raw
                && r.generation == generation
                && r.base <= addr
                && addr + size <= r.end
        })
    }

    /// Records a publication in the range table: extends an existing
    /// slot when the write starts exactly at its end (the sequential
    /// sweep case), otherwise claims a fresh slot round-robin.
    ///
    /// Same contract as [`insert`](Self::insert): call only after a
    /// successful, complete write check.
    #[inline]
    pub fn insert_coalesced(&mut self, addr: usize, size: usize, epoch_raw: u32, generation: u64) {
        let Some(end) = addr.checked_add(size) else {
            return;
        };
        for r in &mut self.ranges {
            if r.end > r.base && r.epoch == epoch_raw && r.generation == generation {
                if r.end == addr {
                    r.end = end;
                    return;
                }
                if r.base <= addr && end <= r.end {
                    return; // already covered
                }
            }
        }
        self.ranges[self.range_victim] = RangeSlot {
            base: addr,
            end,
            epoch: epoch_raw,
            generation,
        };
        self.range_victim = (self.range_victim + 1) % RANGE_SLOTS;
    }

    /// Empties the filter. Called on every epoch increment (sync
    /// operation); entries would self-invalidate via their epoch tag
    /// anyway, so this is hygiene, not a soundness requirement.
    #[inline]
    pub fn clear(&mut self) {
        self.slots = [Slot::default(); FILTER_SLOTS];
        self.ranges = [RangeSlot::default(); RANGE_SLOTS];
        self.range_victim = 0;
    }
}

/// Plain (non-atomic) per-thread statistics accumulated on the filter-hit
/// fast path when the detector's `deferred_stats` knob is on.
///
/// A filter hit is the one place the check pipeline touches *no* shared
/// state at all — bumping three shared atomics there costs more than the
/// check itself. These counters batch the bumps locally; the owner drains
/// them into the sharded atomics with
/// [`CleanDetector::drain_check_state`](crate::CleanDetector::drain_check_state)
/// on every epoch increment (sync operations are rare relative to
/// accesses) and at thread exit.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PendingStats {
    /// Read checks answered by the filter, not yet drained.
    pub reads_checked: u64,
    /// Write checks answered by the filter, not yet drained.
    pub writes_checked: u64,
    /// Bytes covered by those checks.
    pub bytes_checked: u64,
    /// Filter hits (always `reads_checked + writes_checked` here; kept
    /// separate so draining is a blind field-wise add).
    pub filter_hits: u64,
    /// Checks skipped under a compiled plan's elide ranges, not yet
    /// drained.
    pub plan_elided: u64,
}

impl PendingStats {
    /// True when there is nothing to drain.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.filter_hits == 0
            && self.reads_checked == 0
            && self.writes_checked == 0
            && self.plan_elided == 0
    }
}

/// The per-thread mutable state the fast-path check pipeline threads
/// through [`check_read_with`](crate::CleanDetector::check_read_with) and
/// [`check_write_with`](crate::CleanDetector::check_write_with): the SFR
/// write-set filter, the last-shadow-page cache, and the batched
/// filter-hit statistics.
#[derive(Debug, Default)]
pub struct ThreadCheckState {
    /// Ranges this thread already published this SFR.
    pub filter: SfrWriteFilter,
    /// Last shadow page this thread resolved.
    pub page_cache: ShadowPageCache,
    /// Filter-hit statistics not yet drained into the sharded counters.
    pub pending: PendingStats,
}

impl ThreadCheckState {
    /// Creates empty per-thread state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Flush hook for epoch increments: empties the write-set filter.
    /// (The page cache survives sync operations — page identity does not
    /// depend on the thread's epoch.) Callers holding a detector should
    /// drain [`pending`](Self::pending) first via
    /// [`CleanDetector::drain_check_state`](crate::CleanDetector::drain_check_state).
    #[inline]
    pub fn on_epoch_increment(&mut self) {
        self.filter.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_filter_covers_nothing() {
        let f = SfrWriteFilter::new();
        assert!(!f.covers(0, 1, 0, 0));
        assert!(!f.covers(64, 8, 5, 0));
    }

    #[test]
    fn insert_then_cover_exact_and_subrange() {
        let mut f = SfrWriteFilter::new();
        f.insert(100, 8, 7, 0);
        assert!(f.covers(100, 8, 7, 0), "exact range");
        assert!(f.covers(100, 4, 7, 0), "prefix subrange");
        assert!(!f.covers(96, 8, 7, 0), "starts before entry");
        assert!(!f.covers(104, 8, 7, 0), "runs past entry");
    }

    #[test]
    fn epoch_mismatch_invalidates() {
        let mut f = SfrWriteFilter::new();
        f.insert(100, 8, 7, 0);
        assert!(!f.covers(100, 8, 8, 0), "newer epoch: entry stale");
        assert!(!f.covers(100, 8, 6, 0));
    }

    #[test]
    fn generation_mismatch_invalidates() {
        let mut f = SfrWriteFilter::new();
        f.insert(100, 8, 7, 3);
        assert!(f.covers(100, 8, 7, 3));
        assert!(!f.covers(100, 8, 7, 4), "reset invalidates entries");
    }

    #[test]
    fn clear_empties() {
        let mut f = SfrWriteFilter::new();
        f.insert(100, 8, 7, 0);
        f.clear();
        assert!(!f.covers(100, 8, 7, 0));
    }

    #[test]
    fn direct_mapped_eviction() {
        let mut f = SfrWriteFilter::new();
        f.insert(0, 8, 7, 0);
        // Same slot ((addr >> 3) mod FILTER_SLOTS collides), new entry wins.
        f.insert(8 * FILTER_SLOTS, 8, 7, 0);
        assert!(!f.covers(0, 8, 7, 0), "evicted by colliding insert");
        assert!(f.covers(8 * FILTER_SLOTS, 8, 7, 0));
    }

    #[test]
    fn subrange_lookup_misses_on_different_slot() {
        // Containment is only visible from the slot the *access* maps to;
        // an access whose index differs from the entry's base index is a
        // (sound) miss even though the range would cover it.
        let mut f = SfrWriteFilter::new();
        f.insert(100, 16, 7, 0);
        assert!(!f.covers(112, 4, 7, 0), "different slot: miss, not unsound");
    }

    #[test]
    fn check_state_flushes_filter_only() {
        let mut st = ThreadCheckState::new();
        st.filter.insert(64, 8, 3, 0);
        st.on_epoch_increment();
        assert!(!st.filter.covers(64, 8, 3, 0));
    }

    #[test]
    fn range_slot_grows_with_a_sequential_sweep() {
        let mut f = SfrWriteFilter::new();
        // A 512-byte strided sweep occupies ONE range slot and the whole
        // swept prefix stays covered — the shape direct-mapped slots
        // cannot express (each insert would clobber a different slot).
        for i in 0..64 {
            f.insert_coalesced(i * 8, 8, 7, 0);
        }
        assert!(f.covers_range(0, 512, 7, 0), "entire sweep covered");
        assert!(f.covers_range(8, 8, 7, 0), "early step still covered");
        assert!(!f.covers_range(512, 8, 7, 0), "past the sweep");
        assert!(!f.covers_range(0, 8, 8, 0), "epoch mismatch");
        assert!(!f.covers_range(0, 8, 7, 1), "generation mismatch");
    }

    #[test]
    fn range_slots_evict_round_robin() {
        let mut f = SfrWriteFilter::new();
        for k in 0..RANGE_SLOTS + 1 {
            f.insert_coalesced(k * 0x10000, 8, 7, 0);
        }
        assert!(!f.covers_range(0, 8, 7, 0), "oldest range evicted");
        assert!(f.covers_range(RANGE_SLOTS * 0x10000, 8, 7, 0));
    }

    #[test]
    fn covered_reinsert_does_not_burn_a_slot() {
        let mut f = SfrWriteFilter::new();
        f.insert_coalesced(0, 64, 7, 0);
        f.insert_coalesced(8, 8, 7, 0); // already covered: no-op
        f.insert_coalesced(0x10000, 8, 7, 0);
        assert!(f.covers_range(0, 64, 7, 0));
        assert!(f.covers_range(0x10000, 8, 7, 0));
    }

    #[test]
    fn clear_empties_range_slots_too() {
        let mut f = SfrWriteFilter::new();
        f.insert_coalesced(0, 64, 7, 0);
        f.clear();
        assert!(!f.covers_range(0, 8, 7, 0));
    }
}
