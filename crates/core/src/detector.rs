//! The CLEAN WAW/RAW race check (Figure 2, Sections 3.2, 4.3 and 4.4).
//!
//! On every potentially shared access the detector:
//!
//! 1. loads the epoch(s) of the accessed bytes from the
//!    [`ShadowMemory`](crate::ShadowMemory),
//! 2. compares the saved clock with the accessing thread's vector-clock
//!    element for the saving thread (Figure 2, line 3) — a greater saved
//!    clock means the previous write does not happen-before the current
//!    access: a WAW race (for writes) or a RAW race (for reads),
//! 3. for writes, publishes the thread's current epoch with a CAS; a failed
//!    CAS means another unordered write was published concurrently — also a
//!    WAW race (Section 4.3).
//!
//! # Access/check ordering contract (Section 4.3)
//!
//! To never misinterpret a RAW as a (undetected) WAR, callers must invoke
//! [`CleanDetector::check_write`] *before* performing the actual store, and
//! [`CleanDetector::check_read`] *immediately after* performing the actual
//! load. The runtime crate's accessors honour this contract.

use crate::clock::VectorClock;
use crate::epoch::{Epoch, EpochLayout, ThreadId};
use crate::report::{AccessKind, RaceReport};
use crate::shadow::ShadowMemory;
use crate::stats::{DetectorStats, StatsSnapshot};
use parking_lot::Mutex;

/// How concurrent race checks are kept atomic (Section 4.3 vs the
/// lock-based strawman of Section 3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicityMode {
    /// CLEAN's scheme: checks ordered around the actual access, epoch
    /// updates published with compare-and-swap — no locks on the access
    /// path (Section 4.3).
    LockFree,
    /// The conventional scheme CLEAN avoids: a striped lock serializes
    /// every check for the same address region. Correct but slow — the
    /// paper cites >40% of total detection overhead going to locking in
    /// such designs; the `ablation_locking` experiment quantifies it here.
    PerCheckLocking,
}

/// Width in epochs of the modelled wide CAS (Section 4.4: a 128-bit CAS
/// updates 4 adjacent 32-bit epochs at once).
pub const WIDE_CAS_EPOCHS: usize = 4;

/// Number of stripes in the lock table of
/// [`AtomicityMode::PerCheckLocking`].
const LOCK_STRIPES: usize = 64;

/// Configuration of the software race detector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DetectorConfig {
    /// Epoch bit layout (clock width is the Table 1 knob).
    pub layout: EpochLayout,
    /// Enables the Section 4.4 multi-byte optimization: vector-compare all
    /// epochs of an access and, in the common all-equal case, perform a
    /// single race check (and wide-CAS updates). Disabling it forces the
    /// naive one-check-per-byte behaviour measured in Figure 8.
    pub vectorized: bool,
    /// Atomicity scheme for concurrent checks (ablation knob).
    pub atomicity: AtomicityMode,
}

impl DetectorConfig {
    /// The paper's default software configuration.
    pub fn new() -> Self {
        DetectorConfig {
            layout: EpochLayout::paper_default(),
            vectorized: true,
            atomicity: AtomicityMode::LockFree,
        }
    }

    /// Sets the epoch layout.
    pub fn layout(mut self, layout: EpochLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Enables or disables the multi-byte vectorization (Figure 8).
    pub fn vectorized(mut self, on: bool) -> Self {
        self.vectorized = on;
        self
    }

    /// Selects the atomicity scheme (the locking-ablation knob).
    pub fn atomicity(mut self, mode: AtomicityMode) -> Self {
        self.atomicity = mode;
        self
    }
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// The precise WAW/RAW race detector of CLEAN.
///
/// One detector instance is shared by all threads of a monitored program;
/// every method is safe to call concurrently. Races are returned as
/// [`RaceReport`] errors — the caller (the runtime) converts the first one
/// into a program-stopping race exception.
///
/// # Examples
///
/// Detecting a WAW race between two unsynchronized threads:
///
/// ```
/// use clean_core::{CleanDetector, DetectorConfig, ThreadId, VectorClock, EpochLayout};
///
/// let det = CleanDetector::new(1024, DetectorConfig::new());
/// let layout = EpochLayout::default();
/// let t0 = ThreadId::new(0);
/// let t1 = ThreadId::new(1);
/// let mut vc0 = VectorClock::new(2, layout);
/// let vc1 = VectorClock::new(2, layout);
///
/// vc0.increment(t0).unwrap(); // thread 0 passed a sync operation
/// det.check_write(&vc0, t0, 0x10, 4).unwrap(); // first write: fine
/// let race = det.check_write(&vc1, t1, 0x10, 4).unwrap_err(); // unordered!
/// assert_eq!(race.kind, clean_core::RaceKind::WriteAfterWrite);
/// ```
pub struct CleanDetector {
    shadow: ShadowMemory,
    config: DetectorConfig,
    stats: DetectorStats,
    /// Striped check locks, used only under `PerCheckLocking`.
    check_locks: Box<[Mutex<()>]>,
}

impl CleanDetector {
    /// Creates a detector covering `data_size` bytes of shared program
    /// data.
    pub fn new(data_size: usize, config: DetectorConfig) -> Self {
        CleanDetector {
            shadow: ShadowMemory::new(data_size),
            config,
            stats: DetectorStats::new(),
            check_locks: (0..LOCK_STRIPES).map(|_| Mutex::new(())).collect(),
        }
    }

    /// Serializes a check under the striped lock table when the
    /// lock-based atomicity ablation is selected; otherwise free.
    #[inline]
    fn check_guard(&self, addr: usize) -> Option<parking_lot::MutexGuard<'_, ()>> {
        match self.config.atomicity {
            AtomicityMode::LockFree => None,
            AtomicityMode::PerCheckLocking => {
                Some(self.check_locks[(addr / 8) % LOCK_STRIPES].lock())
            }
        }
    }

    /// The detector's configuration.
    pub fn config(&self) -> DetectorConfig {
        self.config
    }

    /// The epoch layout in use.
    pub fn layout(&self) -> EpochLayout {
        self.config.layout
    }

    /// Read access to the underlying epoch table.
    pub fn shadow(&self) -> &ShadowMemory {
        &self.shadow
    }

    /// Snapshot of the accumulated statistics.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    fn report(
        &self,
        kind: AccessKind,
        vc: &VectorClock,
        tid: ThreadId,
        addr: usize,
        size: usize,
        previous: Epoch,
    ) -> RaceReport {
        DetectorStats::bump(&self.stats.races_reported);
        RaceReport {
            kind: kind.race_kind(),
            addr,
            size,
            current_tid: tid,
            current_clock: vc.clock_of(tid),
            previous: previous.without_expanded(),
            layout: self.config.layout,
        }
    }

    /// Checks a shared read of `size` bytes at `addr`.
    ///
    /// Must be called immediately *after* the actual load (Section 4.3).
    /// Reads never update metadata (Section 3.2) — one of the sources of
    /// CLEAN's efficiency relative to full FastTrack.
    ///
    /// # Errors
    ///
    /// Returns a [`RaceReport`] with [`RaceKind::ReadAfterWrite`] if the
    /// last write to any accessed byte does not happen-before this read.
    ///
    /// [`RaceKind::ReadAfterWrite`]: crate::RaceKind::ReadAfterWrite
    pub fn check_read(
        &self,
        vc: &VectorClock,
        tid: ThreadId,
        addr: usize,
        size: usize,
    ) -> Result<(), RaceReport> {
        debug_assert!(size > 0);
        DetectorStats::bump(&self.stats.reads_checked);
        DetectorStats::add(&self.stats.bytes_checked, size as u64);
        let _guard = self.check_guard(addr);

        if self.config.vectorized && size > 1 {
            // Section 4.4: vector-load all epochs; if they are all equal it
            // suffices to test one (there is a race on all bytes or none).
            if let Some(e) = self.shadow.range_uniform(addr, size) {
                DetectorStats::bump(&self.stats.uniform_fast_path);
                if vc.races_with(e) {
                    return Err(self.report(AccessKind::Read, vc, tid, addr, size, e));
                }
                return Ok(());
            }
            DetectorStats::bump(&self.stats.per_byte_slow_path);
        }

        for i in 0..size {
            let e = self.shadow.load(addr + i);
            if vc.races_with(e) {
                return Err(self.report(AccessKind::Read, vc, tid, addr + i, 1, e));
            }
        }
        Ok(())
    }

    /// Checks a shared write of `size` bytes at `addr` and publishes the
    /// thread's epoch for every written byte.
    ///
    /// Must be called *before* the actual store (Section 4.3). The epoch
    /// update uses compare-and-swap so that two concurrent, unordered
    /// writes cannot both pass silently: the loser's CAS fails and the
    /// WAW race is reported (Section 4.3).
    ///
    /// # Errors
    ///
    /// Returns a [`RaceReport`] with [`RaceKind::WriteAfterWrite`] if the
    /// last write to any accessed byte does not happen-before this write,
    /// or if a concurrent unordered write is caught by the CAS.
    ///
    /// [`RaceKind::WriteAfterWrite`]: crate::RaceKind::WriteAfterWrite
    pub fn check_write(
        &self,
        vc: &VectorClock,
        tid: ThreadId,
        addr: usize,
        size: usize,
    ) -> Result<(), RaceReport> {
        debug_assert!(size > 0);
        DetectorStats::bump(&self.stats.writes_checked);
        DetectorStats::add(&self.stats.bytes_checked, size as u64);
        let _guard = self.check_guard(addr);

        let new_epoch = vc.write_epoch(tid);

        if self.config.vectorized && size > 1 {
            if let Some(e) = self.shadow.range_uniform(addr, size) {
                DetectorStats::bump(&self.stats.uniform_fast_path);
                if vc.races_with(e) {
                    return Err(self.report(AccessKind::Write, vc, tid, addr, size, e));
                }
                if e == new_epoch {
                    // Figure 2 line 5: update not needed.
                    DetectorStats::bump(&self.stats.update_skipped);
                    return Ok(());
                }
                // Wide-CAS publish: groups of up to WIDE_CAS_EPOCHS epochs
                // are updated per modelled 128-bit CAS (Section 4.4).
                return self.publish_range(vc, tid, addr, size, e, new_epoch);
            }
            DetectorStats::bump(&self.stats.per_byte_slow_path);
        }

        for i in 0..size {
            let e = self.shadow.load(addr + i);
            if vc.races_with(e) {
                return Err(self.report(AccessKind::Write, vc, tid, addr + i, 1, e));
            }
            if e == new_epoch {
                DetectorStats::bump(&self.stats.update_skipped);
                continue;
            }
            if let Err(found) = self.shadow.compare_exchange(addr + i, e, new_epoch) {
                DetectorStats::bump(&self.stats.cas_conflicts);
                return Err(self.report(AccessKind::Write, vc, tid, addr + i, 1, found));
            }
            DetectorStats::bump(&self.stats.epoch_updates);
        }
        Ok(())
    }

    /// Publishes `new_epoch` over `[addr, addr+size)` whose epochs were all
    /// observed equal to `expected`.
    fn publish_range(
        &self,
        vc: &VectorClock,
        tid: ThreadId,
        addr: usize,
        size: usize,
        expected: Epoch,
        new_epoch: Epoch,
    ) -> Result<(), RaceReport> {
        if let Err((at, found)) = self
            .shadow
            .compare_exchange_range(addr, size, expected, new_epoch)
        {
            // A concurrent check interleaved between our load and CAS.
            // Seeing our own new epoch is impossible (no thread races
            // with itself), so this is a concurrent unordered write.
            DetectorStats::bump(&self.stats.cas_conflicts);
            return Err(self.report(AccessKind::Write, vc, tid, at, 1, found));
        }
        DetectorStats::add(
            &self.stats.epoch_updates,
            (size as u64).div_ceil(WIDE_CAS_EPOCHS as u64),
        );
        Ok(())
    }

    /// Unified entry point dispatching on [`AccessKind`].
    ///
    /// # Errors
    ///
    /// Propagates the race reports of [`check_read`](Self::check_read) /
    /// [`check_write`](Self::check_write).
    pub fn check_access(
        &self,
        kind: AccessKind,
        vc: &VectorClock,
        tid: ThreadId,
        addr: usize,
        size: usize,
    ) -> Result<(), RaceReport> {
        match kind {
            AccessKind::Read => self.check_read(vc, tid, addr, size),
            AccessKind::Write => self.check_write(vc, tid, addr, size),
        }
    }

    /// The epoch currently recorded for data byte `addr` (test/diagnostic
    /// aid; the hardware simulator keeps its own metadata).
    pub fn epoch_at(&self, addr: usize) -> Epoch {
        self.shadow.load(addr)
    }

    /// Deterministic metadata reset (Section 4.5). The caller must have
    /// brought the program to a globally deterministic quiescent point and
    /// must reset all thread and lock vector clocks alongside.
    pub fn reset_metadata(&self) {
        self.shadow.reset();
    }
}

impl std::fmt::Debug for CleanDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CleanDetector")
            .field("config", &self.config)
            .field("shadow", &self.shadow)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::RaceKind;

    fn setup(n_threads: usize) -> (CleanDetector, Vec<VectorClock>) {
        let det = CleanDetector::new(1 << 16, DetectorConfig::new());
        let layout = det.layout();
        let clocks = (0..n_threads)
            .map(|_| VectorClock::new(n_threads, layout))
            .collect();
        (det, clocks)
    }

    #[test]
    fn first_accesses_never_race() {
        let (det, vcs) = setup(2);
        det.check_read(&vcs[0], ThreadId::new(0), 0, 8).unwrap();
        det.check_write(&vcs[0], ThreadId::new(0), 0, 8).unwrap();
        det.check_read(&vcs[0], ThreadId::new(0), 0, 8).unwrap();
    }

    #[test]
    fn waw_between_unordered_writes() {
        let (det, mut vcs) = setup(2);
        vcs[0].increment(ThreadId::new(0)).unwrap();
        det.check_write(&vcs[0], ThreadId::new(0), 64, 4).unwrap();
        let race = det
            .check_write(&vcs[1], ThreadId::new(1), 64, 4)
            .unwrap_err();
        assert_eq!(race.kind, RaceKind::WriteAfterWrite);
        assert_eq!(race.previous_tid(), ThreadId::new(0));
        assert_eq!(race.previous_clock(), 1);
    }

    #[test]
    fn raw_between_unordered_read_and_write() {
        let (det, mut vcs) = setup(2);
        vcs[0].increment(ThreadId::new(0)).unwrap();
        det.check_write(&vcs[0], ThreadId::new(0), 128, 8).unwrap();
        let race = det
            .check_read(&vcs[1], ThreadId::new(1), 128, 8)
            .unwrap_err();
        assert_eq!(race.kind, RaceKind::ReadAfterWrite);
    }

    #[test]
    fn synchronized_accesses_do_not_race() {
        let (det, mut vcs) = setup(2);
        let (t0, t1) = (ThreadId::new(0), ThreadId::new(1));
        vcs[0].increment(t0).unwrap();
        det.check_write(&vcs[0], t0, 0, 4).unwrap();
        // Simulate t0 releasing a lock t1 then acquires: t1 joins t0's VC.
        let release = vcs[0].clone();
        vcs[1].join(&release);
        det.check_read(&vcs[1], t1, 0, 4).unwrap();
        det.check_write(&vcs[1], t1, 0, 4).unwrap();
    }

    #[test]
    fn war_is_deliberately_not_detected() {
        // Thread 0 reads, thread 1 writes, unordered: a WAR race that CLEAN
        // chooses to miss (Section 3.1).
        let (det, mut vcs) = setup(2);
        det.check_read(&vcs[0], ThreadId::new(0), 32, 4).unwrap();
        vcs[1].increment(ThreadId::new(1)).unwrap();
        det.check_write(&vcs[1], ThreadId::new(1), 32, 4).unwrap();
    }

    #[test]
    fn same_thread_rewrites_never_race() {
        let (det, mut vcs) = setup(2);
        let t0 = ThreadId::new(0);
        for _ in 0..5 {
            det.check_write(&vcs[0], t0, 8, 8).unwrap();
            det.check_read(&vcs[0], t0, 8, 8).unwrap();
            vcs[0].increment(t0).unwrap();
        }
    }

    #[test]
    fn update_skipped_when_epoch_current() {
        let (det, vcs) = setup(1);
        let t0 = ThreadId::new(0);
        det.check_write(&vcs[0], t0, 0, 4).unwrap();
        let before = det.stats().epoch_updates;
        det.check_write(&vcs[0], t0, 0, 4).unwrap();
        let after = det.stats();
        assert_eq!(after.epoch_updates, before, "no redundant publication");
        assert!(after.update_skipped >= 1);
    }

    #[test]
    fn partial_overlap_detects_race_on_single_byte() {
        let (det, mut vcs) = setup(2);
        vcs[0].increment(ThreadId::new(0)).unwrap();
        // t0 writes one byte inside an 8-byte region.
        det.check_write(&vcs[0], ThreadId::new(0), 19, 1).unwrap();
        // t1 reads the full 8 bytes: must race because of byte 19.
        let race = det
            .check_read(&vcs[1], ThreadId::new(1), 16, 8)
            .unwrap_err();
        assert_eq!(race.kind, RaceKind::ReadAfterWrite);
        assert_eq!(race.addr, 19);
    }

    #[test]
    fn non_vectorized_matches_vectorized_verdicts() {
        for vectorized in [false, true] {
            let det = CleanDetector::new(4096, DetectorConfig::new().vectorized(vectorized));
            let layout = det.layout();
            let mut vc0 = VectorClock::new(2, layout);
            let vc1 = VectorClock::new(2, layout);
            vc0.increment(ThreadId::new(0)).unwrap();
            det.check_write(&vc0, ThreadId::new(0), 0, 8).unwrap();
            assert!(det.check_read(&vc1, ThreadId::new(1), 0, 8).is_err());
            let mut synced = VectorClock::new(2, layout);
            synced.join(&vc0);
            assert!(det.check_read(&synced, ThreadId::new(1), 0, 8).is_ok());
        }
    }

    #[test]
    fn vectorized_fast_path_is_counted() {
        let (det, vcs) = setup(1);
        det.check_write(&vcs[0], ThreadId::new(0), 0, 8).unwrap();
        det.check_read(&vcs[0], ThreadId::new(0), 0, 8).unwrap();
        assert!(det.stats().uniform_fast_path >= 1);
    }

    #[test]
    fn mixed_epochs_take_slow_path() {
        let (det, mut vcs) = setup(2);
        let (t0, t1) = (ThreadId::new(0), ThreadId::new(1));
        det.check_write(&vcs[0], t0, 0, 4).unwrap();
        // Synchronize t1 after t0, then t1 writes adjacent bytes.
        let release = vcs[0].clone();
        vcs[1].join(&release);
        vcs[1].increment(t1).unwrap();
        det.check_write(&vcs[1], t1, 4, 4).unwrap();
        // An 8-byte read spanning both regions sees two different epochs.
        let mut reader = VectorClock::new(2, det.layout());
        reader.join(&vcs[1]);
        reader.join(&vcs[0]);
        det.check_read(&reader, t0, 0, 8).unwrap();
        assert!(det.stats().per_byte_slow_path >= 1);
    }

    #[test]
    fn reset_forgets_history() {
        let (det, mut vcs) = setup(2);
        vcs[0].increment(ThreadId::new(0)).unwrap();
        det.check_write(&vcs[0], ThreadId::new(0), 0, 4).unwrap();
        det.reset_metadata();
        // Reset clears thread VCs too in a real run; here even the stale
        // reader passes because the epoch record is gone — the known,
        // accepted miss of Section 4.5.
        let fresh = VectorClock::new(2, det.layout());
        det.check_read(&fresh, ThreadId::new(1), 0, 4).unwrap();
    }

    #[test]
    fn check_access_dispatch() {
        let (det, vcs) = setup(1);
        det.check_access(AccessKind::Write, &vcs[0], ThreadId::new(0), 0, 2)
            .unwrap();
        det.check_access(AccessKind::Read, &vcs[0], ThreadId::new(0), 0, 2)
            .unwrap();
    }

    #[test]
    fn locked_atomicity_gives_identical_verdicts() {
        for mode in [AtomicityMode::LockFree, AtomicityMode::PerCheckLocking] {
            let det = CleanDetector::new(4096, DetectorConfig::new().atomicity(mode));
            let layout = det.layout();
            let mut vc0 = VectorClock::new(2, layout);
            let vc1 = VectorClock::new(2, layout);
            vc0.increment(ThreadId::new(0)).unwrap();
            det.check_write(&vc0, ThreadId::new(0), 0, 8).unwrap();
            assert!(det.check_write(&vc1, ThreadId::new(1), 0, 8).is_err());
            let mut synced = VectorClock::new(2, layout);
            synced.join(&vc0);
            assert!(det.check_read(&synced, ThreadId::new(1), 0, 8).is_ok());
        }
    }

    #[test]
    fn locked_atomicity_is_concurrency_safe() {
        use std::sync::Arc;
        let det = Arc::new(CleanDetector::new(
            4096,
            DetectorConfig::new().atomicity(AtomicityMode::PerCheckLocking),
        ));
        let layout = det.layout();
        let mut handles = Vec::new();
        for t in 0..4u16 {
            let det = Arc::clone(&det);
            handles.push(std::thread::spawn(move || {
                let mut vc = VectorClock::new(4, layout);
                vc.increment(ThreadId::new(t)).unwrap();
                // Disjoint regions: no races, heavy lock traffic.
                for i in 0..200 {
                    let addr = t as usize * 512 + (i % 64) * 8;
                    det.check_write(&vc, ThreadId::new(t), addr, 8).unwrap();
                    det.check_read(&vc, ThreadId::new(t), addr, 8).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(det.stats().races_reported, 0);
    }

    #[test]
    fn epoch_at_reflects_publication() {
        let (det, mut vcs) = setup(1);
        let t0 = ThreadId::new(0);
        vcs[0].increment(t0).unwrap();
        det.check_write(&vcs[0], t0, 40, 4).unwrap();
        let e = det.epoch_at(40);
        assert_eq!(det.layout().tid(e), t0);
        assert_eq!(det.layout().clock(e), 1);
        assert_eq!(det.epoch_at(44), Epoch::ZERO);
    }
}
