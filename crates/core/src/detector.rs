//! The CLEAN WAW/RAW race check (Figure 2, Sections 3.2, 4.3 and 4.4).
//!
//! On every potentially shared access the detector:
//!
//! 1. loads the epoch(s) of the accessed bytes from the
//!    [`ShadowMemory`](crate::ShadowMemory),
//! 2. compares the saved clock with the accessing thread's vector-clock
//!    element for the saving thread (Figure 2, line 3) — a greater saved
//!    clock means the previous write does not happen-before the current
//!    access: a WAW race (for writes) or a RAW race (for reads),
//! 3. for writes, publishes the thread's current epoch with a CAS; a failed
//!    CAS means another unordered write was published concurrently — also a
//!    WAW race (Section 4.3).
//!
//! # Access/check ordering contract (Section 4.3)
//!
//! To never misinterpret a RAW as a (undetected) WAR, callers must invoke
//! [`CleanDetector::check_write`] *before* performing the actual store, and
//! [`CleanDetector::check_read`] *immediately after* performing the actual
//! load. The runtime crate's accessors honour this contract.
//!
//! # Fast-path pipeline
//!
//! The `*_with` entry points ([`check_read_with`], [`check_write_with`])
//! additionally thread per-thread [`ThreadCheckState`] through the check:
//! the SFR write-set filter answers provably redundant checks without
//! touching shadow memory at all (the software analogue of the paper's
//! Section 5 LLC-ownership filtering), and the last-page cache skips the
//! shadow directory walk for same-page accesses. Both are sound-by-
//! construction accelerations — verdicts are identical with them on or
//! off (see DESIGN.md and the differential suites).
//!
//! [`check_read_with`]: CleanDetector::check_read_with
//! [`check_write_with`]: CleanDetector::check_write_with

use crate::clock::VectorClock;
use crate::epoch::{Epoch, EpochLayout, ThreadId};
use crate::filter::ThreadCheckState;
use crate::report::{AccessKind, RaceReport};
use crate::shadow::{ShadowMemory, ShadowPageCache};
use crate::stats::{DetectorStats, StatsShard, StatsSnapshot};
use clean_plan::{CompiledPlan, PlanDecision};
use parking_lot::Mutex;
use std::sync::Arc;

/// How concurrent race checks are kept atomic (Section 4.3 vs the
/// lock-based strawman of Section 3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicityMode {
    /// CLEAN's scheme: checks ordered around the actual access, epoch
    /// updates published with compare-and-swap — no locks on the access
    /// path (Section 4.3).
    LockFree,
    /// The conventional scheme CLEAN avoids: a striped lock serializes
    /// every check for the same address region. Correct but slow — the
    /// paper cites >40% of total detection overhead going to locking in
    /// such designs; the `ablation_locking` experiment quantifies it here.
    PerCheckLocking,
}

/// Width in epochs of the modelled wide CAS (Section 4.4: a 128-bit CAS
/// updates 4 adjacent 32-bit epochs at once).
pub const WIDE_CAS_EPOCHS: usize = 4;

/// Number of stripes in the lock table of
/// [`AtomicityMode::PerCheckLocking`].
const LOCK_STRIPES: usize = 64;

/// Default statistics shard count when sharding is enabled: enough to
/// spread the paper's 8-core working point across distinct cache lines.
pub const DEFAULT_STATS_SHARDS: usize = 8;

/// Configuration of the software race detector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectorConfig {
    /// Epoch bit layout (clock width is the Table 1 knob).
    pub layout: EpochLayout,
    /// Enables the Section 4.4 multi-byte optimization: vector-compare all
    /// epochs of an access and, in the common all-equal case, perform a
    /// single race check (and wide-CAS updates). Disabling it forces the
    /// naive one-check-per-byte behaviour measured in Figure 8.
    pub vectorized: bool,
    /// Atomicity scheme for concurrent checks (ablation knob).
    pub atomicity: AtomicityMode,
    /// Enables the per-thread SFR write-set filter on the `*_with` entry
    /// points: ranges this thread already published this SFR soundly skip
    /// the full check (Section 5's redundant-check elimination).
    pub write_filter: bool,
    /// Enables the thread-local last-shadow-page cache on the `*_with`
    /// entry points, skipping the directory walk for same-page accesses.
    pub page_cache: bool,
    /// Batches the statistics bumps of filter-answered checks into plain
    /// per-thread counters ([`PendingStats`](crate::PendingStats)) instead
    /// of shared atomics, making the filter-hit path touch no shared state
    /// at all. Requires callers to drain via
    /// [`CleanDetector::drain_check_state`] on epoch increments and thread
    /// exit (the runtime and scheduler VMs do); until drained, snapshots
    /// under-report the deferred counters.
    pub deferred_stats: bool,
    /// Number of cache-line-padded statistics shards; 1 reproduces the
    /// fully shared (contended) counter layout.
    pub stats_shards: usize,
    /// Optional compiled static check plan consumed by the `*_with`
    /// entry points. Per planned range the detector elides provably
    /// thread-private checks (guarded: only the witness owner skips;
    /// foreign threads take the full check), routes strided sweeps
    /// through growable coalesced filter ranges, or runs the chunked
    /// batched epoch-compare loop. `None` (the default) changes nothing.
    pub check_plan: Option<Arc<CompiledPlan>>,
}

impl DetectorConfig {
    /// The paper's default software configuration (all fast-path layers
    /// enabled).
    pub fn new() -> Self {
        DetectorConfig {
            layout: EpochLayout::paper_default(),
            vectorized: true,
            atomicity: AtomicityMode::LockFree,
            write_filter: true,
            page_cache: true,
            deferred_stats: true,
            stats_shards: DEFAULT_STATS_SHARDS,
            check_plan: None,
        }
    }

    /// Sets the epoch layout.
    pub fn layout(mut self, layout: EpochLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Enables or disables the multi-byte vectorization (Figure 8).
    pub fn vectorized(mut self, on: bool) -> Self {
        self.vectorized = on;
        self
    }

    /// Selects the atomicity scheme (the locking-ablation knob).
    pub fn atomicity(mut self, mode: AtomicityMode) -> Self {
        self.atomicity = mode;
        self
    }

    /// Enables or disables the SFR write-set filter.
    pub fn write_filter(mut self, on: bool) -> Self {
        self.write_filter = on;
        self
    }

    /// Enables or disables the thread-local shadow-page cache.
    pub fn page_cache(mut self, on: bool) -> Self {
        self.page_cache = on;
        self
    }

    /// Enables or disables deferred (per-thread batched) statistics on the
    /// filter-hit path.
    pub fn deferred_stats(mut self, on: bool) -> Self {
        self.deferred_stats = on;
        self
    }

    /// Sets the statistics shard count (clamped to ≥ 1 at use).
    pub fn stats_shards(mut self, n: usize) -> Self {
        self.stats_shards = n;
        self
    }

    /// Convenience toggle: sharded ([`DEFAULT_STATS_SHARDS`]) vs fully
    /// shared (1 shard) statistics counters.
    pub fn sharded_stats(self, on: bool) -> Self {
        self.stats_shards(if on { DEFAULT_STATS_SHARDS } else { 1 })
    }

    /// Installs (or clears) the compiled static check plan consumed by
    /// the `*_with` entry points. Plans only compile after validation,
    /// so an unsound plan can never reach this knob.
    pub fn check_plan(mut self, plan: Option<Arc<CompiledPlan>>) -> Self {
        self.check_plan = plan;
        self
    }
}

impl Default for DetectorConfig {
    fn default() -> Self {
        Self::new()
    }
}

/// Bridge from the detector into a `clean-obs` metrics registry.
///
/// The detector's own [`DetectorStats`] shards stay the source of truth
/// for every per-access quantity; this bundle only mirrors the *rare*
/// events into registry counters — SFR-boundary drains (where the
/// deferred filter-hit statistics land) and race reports. Nothing on the
/// per-access check path touches these counters, so attaching observers
/// costs a handful of relaxed atomics per SFR, and a detector without
/// one pays a single never-taken branch per drain.
#[derive(Debug, Clone)]
pub struct DetectorObs {
    /// Non-empty [`CleanDetector::drain_check_state`] calls — roughly
    /// one per SFR that took at least one deferred fast path.
    drains: clean_obs::Counter,
    /// Filter-answered checks, mirrored from the drained pendings.
    filter_hits: clean_obs::Counter,
    /// Plan-elided checks, mirrored from the drained pendings.
    plan_elided: clean_obs::Counter,
    /// Races reported (WAW + RAW).
    races: clean_obs::Counter,
}

impl DetectorObs {
    /// Registers the detector counters (`detector_sfr_drains`,
    /// `detector_filter_hits`, `detector_plan_elided`,
    /// `detector_races_total`) in `registry`.
    pub fn new(registry: &clean_obs::Registry) -> Self {
        DetectorObs {
            drains: registry.counter("detector_sfr_drains"),
            filter_hits: registry.counter("detector_filter_hits"),
            plan_elided: registry.counter("detector_plan_elided"),
            races: registry.counter("detector_races_total"),
        }
    }

    /// Like [`DetectorObs::new`] against the process-wide
    /// [`clean_obs::global`] registry.
    pub fn global() -> Self {
        Self::new(clean_obs::global())
    }
}

/// Uniform view over cached and uncached shadow access, so the check
/// bodies are written once and monomorphized for both paths.
trait ShadowOps {
    fn load(&mut self, addr: usize) -> Epoch;
    fn range_uniform(&mut self, addr: usize, len: usize) -> Option<Epoch>;
    fn range_uniform_batched(&mut self, addr: usize, len: usize) -> Option<Epoch>;
    fn compare_exchange(&mut self, addr: usize, expected: Epoch, new: Epoch) -> Result<(), Epoch>;
    fn compare_exchange_range(
        &mut self,
        addr: usize,
        len: usize,
        expected: Epoch,
        new: Epoch,
    ) -> Result<(), (usize, Epoch)>;
}

struct Uncached<'a>(&'a ShadowMemory);

impl ShadowOps for Uncached<'_> {
    #[inline]
    fn load(&mut self, addr: usize) -> Epoch {
        self.0.load(addr)
    }
    #[inline]
    fn range_uniform(&mut self, addr: usize, len: usize) -> Option<Epoch> {
        self.0.range_uniform(addr, len)
    }
    #[inline]
    fn range_uniform_batched(&mut self, addr: usize, len: usize) -> Option<Epoch> {
        self.0.range_uniform_batched(addr, len)
    }
    #[inline]
    fn compare_exchange(&mut self, addr: usize, expected: Epoch, new: Epoch) -> Result<(), Epoch> {
        self.0.compare_exchange(addr, expected, new)
    }
    #[inline]
    fn compare_exchange_range(
        &mut self,
        addr: usize,
        len: usize,
        expected: Epoch,
        new: Epoch,
    ) -> Result<(), (usize, Epoch)> {
        self.0.compare_exchange_range(addr, len, expected, new)
    }
}

struct Cached<'a> {
    shadow: &'a ShadowMemory,
    cache: &'a mut ShadowPageCache,
}

impl ShadowOps for Cached<'_> {
    #[inline]
    fn load(&mut self, addr: usize) -> Epoch {
        self.shadow.load_cached(addr, self.cache)
    }
    #[inline]
    fn range_uniform(&mut self, addr: usize, len: usize) -> Option<Epoch> {
        self.shadow.range_uniform_cached(addr, len, self.cache)
    }
    #[inline]
    fn range_uniform_batched(&mut self, addr: usize, len: usize) -> Option<Epoch> {
        self.shadow
            .range_uniform_batched_cached(addr, len, self.cache)
    }
    #[inline]
    fn compare_exchange(&mut self, addr: usize, expected: Epoch, new: Epoch) -> Result<(), Epoch> {
        self.shadow
            .compare_exchange_cached(addr, expected, new, self.cache)
    }
    #[inline]
    fn compare_exchange_range(
        &mut self,
        addr: usize,
        len: usize,
        expected: Epoch,
        new: Epoch,
    ) -> Result<(), (usize, Epoch)> {
        self.shadow
            .compare_exchange_range_cached(addr, len, expected, new, self.cache)
    }
}

/// The precise WAW/RAW race detector of CLEAN.
///
/// One detector instance is shared by all threads of a monitored program;
/// every method is safe to call concurrently. Races are returned as
/// [`RaceReport`] errors — the caller (the runtime) converts the first one
/// into a program-stopping race exception.
///
/// # Examples
///
/// Detecting a WAW race between two unsynchronized threads:
///
/// ```
/// use clean_core::{CleanDetector, DetectorConfig, ThreadId, VectorClock, EpochLayout};
///
/// let det = CleanDetector::new(1024, DetectorConfig::new());
/// let layout = EpochLayout::default();
/// let t0 = ThreadId::new(0);
/// let t1 = ThreadId::new(1);
/// let mut vc0 = VectorClock::new(2, layout);
/// let vc1 = VectorClock::new(2, layout);
///
/// vc0.increment(t0).unwrap(); // thread 0 passed a sync operation
/// det.check_write(&vc0, t0, 0x10, 4).unwrap(); // first write: fine
/// let race = det.check_write(&vc1, t1, 0x10, 4).unwrap_err(); // unordered!
/// assert_eq!(race.kind, clean_core::RaceKind::WriteAfterWrite);
/// ```
pub struct CleanDetector {
    shadow: ShadowMemory,
    config: DetectorConfig,
    stats: DetectorStats,
    /// Striped check locks, used only under `PerCheckLocking`.
    check_locks: Box<[Mutex<()>]>,
    /// Optional metrics bridge, consulted only at SFR drains and race
    /// reports — never on the per-access path.
    obs: Option<DetectorObs>,
}

impl CleanDetector {
    /// Creates a detector covering `data_size` bytes of shared program
    /// data.
    pub fn new(data_size: usize, config: DetectorConfig) -> Self {
        let stats = DetectorStats::with_shards(config.stats_shards);
        CleanDetector {
            shadow: ShadowMemory::new(data_size),
            config,
            stats,
            check_locks: (0..LOCK_STRIPES).map(|_| Mutex::new(())).collect(),
            obs: None,
        }
    }

    /// Attaches a metrics bridge, mirroring SFR drains and race reports
    /// into `clean-obs` counters. Must be called before the detector is
    /// shared across threads (it takes `&mut self`); detectors without a
    /// bridge pay nothing beyond one never-taken branch per drain.
    pub fn attach_obs(&mut self, obs: DetectorObs) {
        self.obs = Some(obs);
    }

    /// Serializes a check under the striped lock table when the
    /// lock-based atomicity ablation is selected; otherwise free.
    #[inline]
    fn check_guard(&self, addr: usize) -> Option<parking_lot::MutexGuard<'_, ()>> {
        match self.config.atomicity {
            AtomicityMode::LockFree => None,
            AtomicityMode::PerCheckLocking => {
                Some(self.check_locks[(addr / 8) % LOCK_STRIPES].lock())
            }
        }
    }

    /// The detector's configuration.
    pub fn config(&self) -> DetectorConfig {
        self.config.clone()
    }

    /// The decision of the installed check plan for `[addr, addr+size)`,
    /// if a plan is installed and a range fully contains the access.
    #[inline]
    fn plan_decision(&self, addr: usize, size: usize) -> Option<PlanDecision> {
        self.config.check_plan.as_ref()?.lookup(addr, size)
    }

    /// The epoch layout in use.
    pub fn layout(&self) -> EpochLayout {
        self.config.layout
    }

    /// Read access to the underlying epoch table.
    pub fn shadow(&self) -> &ShadowMemory {
        &self.shadow
    }

    /// Snapshot of the accumulated statistics (summed across shards).
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    #[inline]
    fn shard(&self, tid: ThreadId) -> &StatsShard {
        self.stats.shard(tid.index())
    }

    #[allow(clippy::too_many_arguments)]
    fn report(
        &self,
        shard: &StatsShard,
        kind: AccessKind,
        vc: &VectorClock,
        tid: ThreadId,
        addr: usize,
        size: usize,
        previous: Epoch,
    ) -> RaceReport {
        DetectorStats::bump(&shard.races_reported);
        if let Some(obs) = &self.obs {
            obs.races.inc();
        }
        RaceReport {
            kind: kind.race_kind(),
            addr,
            size,
            current_tid: tid,
            current_clock: vc.clock_of(tid),
            previous: previous.without_expanded(),
            layout: self.config.layout,
        }
    }

    /// Checks a shared read of `size` bytes at `addr`.
    ///
    /// Must be called immediately *after* the actual load (Section 4.3).
    /// Reads never update metadata (Section 3.2) — one of the sources of
    /// CLEAN's efficiency relative to full FastTrack.
    ///
    /// # Errors
    ///
    /// Returns a [`RaceReport`] with [`RaceKind::ReadAfterWrite`] if the
    /// last write to any accessed byte does not happen-before this read.
    ///
    /// [`RaceKind::ReadAfterWrite`]: crate::RaceKind::ReadAfterWrite
    pub fn check_read(
        &self,
        vc: &VectorClock,
        tid: ThreadId,
        addr: usize,
        size: usize,
    ) -> Result<(), RaceReport> {
        debug_assert!(size > 0);
        let shard = self.shard(tid);
        DetectorStats::bump(&shard.reads_checked);
        DetectorStats::add(&shard.bytes_checked, size as u64);
        let _guard = self.check_guard(addr);
        self.read_body(
            &mut Uncached(&self.shadow),
            shard,
            vc,
            tid,
            addr,
            size,
            false,
        )
    }

    /// [`check_read`](Self::check_read) through the per-thread fast-path
    /// state: a write-set filter hit answers the check without touching
    /// shadow memory; otherwise the check runs through the thread's
    /// last-page cache. Verdicts are identical to the plain entry point.
    ///
    /// # Errors
    ///
    /// Same contract as [`check_read`](Self::check_read).
    pub fn check_read_with(
        &self,
        vc: &VectorClock,
        tid: ThreadId,
        addr: usize,
        size: usize,
        state: &mut ThreadCheckState,
    ) -> Result<(), RaceReport> {
        debug_assert!(size > 0);
        let decision = self.plan_decision(addr, size);
        if let Some(PlanDecision::Elide { owner }) = decision {
            // The plan's witness proves the range thread-private to
            // `owner` for the planned execution; the dynamic guard keeps
            // every *other* thread on the full check path.
            if u32::from(tid.raw()) == owner {
                if self.config.deferred_stats {
                    state.pending.plan_elided += 1;
                } else {
                    DetectorStats::bump(&self.shard(tid).plan_elided);
                }
                return Ok(());
            }
        }
        let epoch_raw = vc.write_epoch(tid).raw();
        let generation = self.shadow.generation();
        let filter_hit = self.config.write_filter
            && (state.filter.covers(addr, size, epoch_raw, generation)
                || (matches!(decision, Some(PlanDecision::Coalesce))
                    && state.filter.covers_range(addr, size, epoch_raw, generation)));
        if filter_hit {
            // Every covered byte still holds this thread's current epoch,
            // so the read trivially happens-after the last write. With
            // deferred stats the hit path touches no shared state at all.
            if self.config.deferred_stats {
                state.pending.reads_checked += 1;
                state.pending.bytes_checked += size as u64;
                state.pending.filter_hits += 1;
            } else {
                let shard = self.shard(tid);
                DetectorStats::bump(&shard.reads_checked);
                DetectorStats::add(&shard.bytes_checked, size as u64);
                DetectorStats::bump(&shard.filter_hits);
            }
            return Ok(());
        }
        let batched = matches!(decision, Some(PlanDecision::Batch));
        let shard = self.shard(tid);
        DetectorStats::bump(&shard.reads_checked);
        DetectorStats::add(&shard.bytes_checked, size as u64);
        let _guard = self.check_guard(addr);
        if self.config.page_cache {
            let mut ops = Cached {
                shadow: &self.shadow,
                cache: &mut state.page_cache,
            };
            self.read_body(&mut ops, shard, vc, tid, addr, size, batched)
        } else {
            self.read_body(
                &mut Uncached(&self.shadow),
                shard,
                vc,
                tid,
                addr,
                size,
                batched,
            )
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn read_body<S: ShadowOps>(
        &self,
        shadow: &mut S,
        shard: &StatsShard,
        vc: &VectorClock,
        tid: ThreadId,
        addr: usize,
        size: usize,
        batched: bool,
    ) -> Result<(), RaceReport> {
        if self.config.vectorized && size > 1 {
            // Section 4.4: vector-load all epochs; if they are all equal it
            // suffices to test one (there is a race on all bytes or none).
            // Plan-batched spans take the chunked compare loop instead of
            // the scalar-acquire walk; verdicts are identical.
            let uniform = if batched {
                DetectorStats::bump(&shard.plan_batched);
                shadow.range_uniform_batched(addr, size)
            } else {
                shadow.range_uniform(addr, size)
            };
            if let Some(e) = uniform {
                DetectorStats::bump(&shard.uniform_fast_path);
                if vc.races_with(e) {
                    return Err(self.report(shard, AccessKind::Read, vc, tid, addr, size, e));
                }
                return Ok(());
            }
            DetectorStats::bump(&shard.per_byte_slow_path);
        }

        for i in 0..size {
            let e = shadow.load(addr + i);
            if vc.races_with(e) {
                return Err(self.report(shard, AccessKind::Read, vc, tid, addr + i, 1, e));
            }
        }
        Ok(())
    }

    /// Checks a shared write of `size` bytes at `addr` and publishes the
    /// thread's epoch for every written byte.
    ///
    /// Must be called *before* the actual store (Section 4.3). The epoch
    /// update uses compare-and-swap so that two concurrent, unordered
    /// writes cannot both pass silently: the loser's CAS fails and the
    /// WAW race is reported (Section 4.3).
    ///
    /// # Errors
    ///
    /// Returns a [`RaceReport`] with [`RaceKind::WriteAfterWrite`] if the
    /// last write to any accessed byte does not happen-before this write,
    /// or if a concurrent unordered write is caught by the CAS.
    ///
    /// [`RaceKind::WriteAfterWrite`]: crate::RaceKind::WriteAfterWrite
    pub fn check_write(
        &self,
        vc: &VectorClock,
        tid: ThreadId,
        addr: usize,
        size: usize,
    ) -> Result<(), RaceReport> {
        debug_assert!(size > 0);
        let shard = self.shard(tid);
        DetectorStats::bump(&shard.writes_checked);
        DetectorStats::add(&shard.bytes_checked, size as u64);
        let _guard = self.check_guard(addr);
        let new_epoch = vc.write_epoch(tid);
        self.write_body(
            &mut Uncached(&self.shadow),
            shard,
            vc,
            tid,
            addr,
            size,
            new_epoch,
            false,
        )
    }

    /// [`check_write`](Self::check_write) through the per-thread fast-path
    /// state. On a filter hit the whole check (and the already-current
    /// epoch publication) is skipped; on a successful full check the
    /// published range is recorded in the filter for the rest of the SFR.
    /// Verdicts are identical to the plain entry point.
    ///
    /// # Errors
    ///
    /// Same contract as [`check_write`](Self::check_write).
    pub fn check_write_with(
        &self,
        vc: &VectorClock,
        tid: ThreadId,
        addr: usize,
        size: usize,
        state: &mut ThreadCheckState,
    ) -> Result<(), RaceReport> {
        debug_assert!(size > 0);
        let decision = self.plan_decision(addr, size);
        if let Some(PlanDecision::Elide { owner }) = decision {
            // Witness-backed thread-private range: the owner's write can
            // neither race nor be raced against within the planned
            // execution, so both the check and the epoch publication are
            // skipped. Foreign threads fall through to the full check.
            if u32::from(tid.raw()) == owner {
                if self.config.deferred_stats {
                    state.pending.plan_elided += 1;
                } else {
                    DetectorStats::bump(&self.shard(tid).plan_elided);
                }
                return Ok(());
            }
        }
        let new_epoch = vc.write_epoch(tid);
        let generation = self.shadow.generation();
        let coalesce = matches!(decision, Some(PlanDecision::Coalesce));
        let filter_hit = self.config.write_filter
            && (state.filter.covers(addr, size, new_epoch.raw(), generation)
                || (coalesce
                    && state
                        .filter
                        .covers_range(addr, size, new_epoch.raw(), generation)));
        if filter_hit {
            // Every covered byte already holds exactly `new_epoch`: the
            // full check would pass and take the Figure 2 line 5 skip.
            if self.config.deferred_stats {
                state.pending.writes_checked += 1;
                state.pending.bytes_checked += size as u64;
                state.pending.filter_hits += 1;
            } else {
                let shard = self.shard(tid);
                DetectorStats::bump(&shard.writes_checked);
                DetectorStats::add(&shard.bytes_checked, size as u64);
                DetectorStats::bump(&shard.filter_hits);
            }
            return Ok(());
        }
        let batched = matches!(decision, Some(PlanDecision::Batch));
        let shard = self.shard(tid);
        DetectorStats::bump(&shard.writes_checked);
        DetectorStats::add(&shard.bytes_checked, size as u64);
        let _guard = self.check_guard(addr);
        let result = if self.config.page_cache {
            let mut ops = Cached {
                shadow: &self.shadow,
                cache: &mut state.page_cache,
            };
            self.write_body(&mut ops, shard, vc, tid, addr, size, new_epoch, batched)
        } else {
            self.write_body(
                &mut Uncached(&self.shadow),
                shard,
                vc,
                tid,
                addr,
                size,
                new_epoch,
                batched,
            )
        };
        if result.is_ok() && self.config.write_filter {
            // The full check passed: all bytes now hold `new_epoch` under
            // `generation`, which is exactly the filter's validity claim.
            // Plan-coalesced sweeps record into the growable range table
            // so the *next* stride extends the entry instead of evicting
            // a direct-mapped slot.
            if coalesce {
                state
                    .filter
                    .insert_coalesced(addr, size, new_epoch.raw(), generation);
            } else {
                state.filter.insert(addr, size, new_epoch.raw(), generation);
            }
        }
        result
    }

    #[allow(clippy::too_many_arguments)]
    fn write_body<S: ShadowOps>(
        &self,
        shadow: &mut S,
        shard: &StatsShard,
        vc: &VectorClock,
        tid: ThreadId,
        addr: usize,
        size: usize,
        new_epoch: Epoch,
        batched: bool,
    ) -> Result<(), RaceReport> {
        if self.config.vectorized && size > 1 {
            let uniform = if batched {
                DetectorStats::bump(&shard.plan_batched);
                shadow.range_uniform_batched(addr, size)
            } else {
                shadow.range_uniform(addr, size)
            };
            if let Some(e) = uniform {
                DetectorStats::bump(&shard.uniform_fast_path);
                if vc.races_with(e) {
                    return Err(self.report(shard, AccessKind::Write, vc, tid, addr, size, e));
                }
                if e == new_epoch {
                    // Figure 2 line 5: update not needed.
                    DetectorStats::bump(&shard.update_skipped);
                    return Ok(());
                }
                // Wide-CAS publish: groups of up to WIDE_CAS_EPOCHS epochs
                // are updated per modelled 128-bit CAS (Section 4.4).
                return self.publish_range(shadow, shard, vc, tid, addr, size, e, new_epoch);
            }
            DetectorStats::bump(&shard.per_byte_slow_path);
        }

        for i in 0..size {
            let e = shadow.load(addr + i);
            if vc.races_with(e) {
                return Err(self.report(shard, AccessKind::Write, vc, tid, addr + i, 1, e));
            }
            if e == new_epoch {
                DetectorStats::bump(&shard.update_skipped);
                continue;
            }
            if let Err(found) = shadow.compare_exchange(addr + i, e, new_epoch) {
                DetectorStats::bump(&shard.cas_conflicts);
                return Err(self.report(shard, AccessKind::Write, vc, tid, addr + i, 1, found));
            }
            DetectorStats::bump(&shard.epoch_updates);
        }
        Ok(())
    }

    /// Publishes `new_epoch` over `[addr, addr+size)` whose epochs were all
    /// observed equal to `expected`.
    #[allow(clippy::too_many_arguments)]
    fn publish_range<S: ShadowOps>(
        &self,
        shadow: &mut S,
        shard: &StatsShard,
        vc: &VectorClock,
        tid: ThreadId,
        addr: usize,
        size: usize,
        expected: Epoch,
        new_epoch: Epoch,
    ) -> Result<(), RaceReport> {
        if let Err((at, found)) = shadow.compare_exchange_range(addr, size, expected, new_epoch) {
            // A concurrent check interleaved between our load and CAS.
            // Seeing our own new epoch is impossible (no thread races
            // with itself), so this is a concurrent unordered write.
            DetectorStats::bump(&shard.cas_conflicts);
            return Err(self.report(shard, AccessKind::Write, vc, tid, at, 1, found));
        }
        DetectorStats::add(
            &shard.epoch_updates,
            (size as u64).div_ceil(WIDE_CAS_EPOCHS as u64),
        );
        Ok(())
    }

    /// Unified entry point dispatching on [`AccessKind`].
    ///
    /// # Errors
    ///
    /// Propagates the race reports of [`check_read`](Self::check_read) /
    /// [`check_write`](Self::check_write).
    pub fn check_access(
        &self,
        kind: AccessKind,
        vc: &VectorClock,
        tid: ThreadId,
        addr: usize,
        size: usize,
    ) -> Result<(), RaceReport> {
        match kind {
            AccessKind::Read => self.check_read(vc, tid, addr, size),
            AccessKind::Write => self.check_write(vc, tid, addr, size),
        }
    }

    /// [`check_access`](Self::check_access) through the per-thread
    /// fast-path state.
    ///
    /// # Errors
    ///
    /// Propagates the race reports of the dispatched check.
    pub fn check_access_with(
        &self,
        kind: AccessKind,
        vc: &VectorClock,
        tid: ThreadId,
        addr: usize,
        size: usize,
        state: &mut ThreadCheckState,
    ) -> Result<(), RaceReport> {
        match kind {
            AccessKind::Read => self.check_read_with(vc, tid, addr, size, state),
            AccessKind::Write => self.check_write_with(vc, tid, addr, size, state),
        }
    }

    /// Drains `state`'s batched filter-hit statistics into `tid`'s stats
    /// shard, leaving the pending counters zero.
    ///
    /// Under `deferred_stats` (the default) the filter-hit fast path
    /// accumulates into plain per-thread counters; call this on every
    /// epoch increment and at thread exit so [`stats`](Self::stats)
    /// snapshots converge to the exact totals. Calling it when nothing is
    /// pending (or when deferral is off) is free.
    pub fn drain_check_state(&self, tid: ThreadId, state: &mut ThreadCheckState) {
        let p = std::mem::take(&mut state.pending);
        if p.is_empty() {
            return;
        }
        let shard = self.shard(tid);
        DetectorStats::add(&shard.reads_checked, p.reads_checked);
        DetectorStats::add(&shard.writes_checked, p.writes_checked);
        DetectorStats::add(&shard.bytes_checked, p.bytes_checked);
        DetectorStats::add(&shard.filter_hits, p.filter_hits);
        DetectorStats::add(&shard.plan_elided, p.plan_elided);
        if let Some(obs) = &self.obs {
            obs.drains.inc();
            obs.filter_hits.add(p.filter_hits);
            obs.plan_elided.add(p.plan_elided);
        }
    }

    /// The epoch currently recorded for data byte `addr` (test/diagnostic
    /// aid; the hardware simulator keeps its own metadata).
    pub fn epoch_at(&self, addr: usize) -> Epoch {
        self.shadow.load(addr)
    }

    /// Deterministic metadata reset (Section 4.5). The caller must have
    /// brought the program to a globally deterministic quiescent point and
    /// must reset all thread and lock vector clocks alongside. Per-thread
    /// [`ThreadCheckState`] needs no flush: filter entries and cached
    /// pages are tagged with the reset generation and self-invalidate.
    pub fn reset_metadata(&self) {
        self.shadow.reset();
    }
}

impl std::fmt::Debug for CleanDetector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CleanDetector")
            .field("config", &self.config)
            .field("shadow", &self.shadow)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::RaceKind;

    fn setup(n_threads: usize) -> (CleanDetector, Vec<VectorClock>) {
        let det = CleanDetector::new(1 << 16, DetectorConfig::new());
        let layout = det.layout();
        let clocks = (0..n_threads)
            .map(|_| VectorClock::new(n_threads, layout))
            .collect();
        (det, clocks)
    }

    #[test]
    fn first_accesses_never_race() {
        let (det, vcs) = setup(2);
        det.check_read(&vcs[0], ThreadId::new(0), 0, 8).unwrap();
        det.check_write(&vcs[0], ThreadId::new(0), 0, 8).unwrap();
        det.check_read(&vcs[0], ThreadId::new(0), 0, 8).unwrap();
    }

    #[test]
    fn waw_between_unordered_writes() {
        let (det, mut vcs) = setup(2);
        vcs[0].increment(ThreadId::new(0)).unwrap();
        det.check_write(&vcs[0], ThreadId::new(0), 64, 4).unwrap();
        let race = det
            .check_write(&vcs[1], ThreadId::new(1), 64, 4)
            .unwrap_err();
        assert_eq!(race.kind, RaceKind::WriteAfterWrite);
        assert_eq!(race.previous_tid(), ThreadId::new(0));
        assert_eq!(race.previous_clock(), 1);
    }

    #[test]
    fn raw_between_unordered_read_and_write() {
        let (det, mut vcs) = setup(2);
        vcs[0].increment(ThreadId::new(0)).unwrap();
        det.check_write(&vcs[0], ThreadId::new(0), 128, 8).unwrap();
        let race = det
            .check_read(&vcs[1], ThreadId::new(1), 128, 8)
            .unwrap_err();
        assert_eq!(race.kind, RaceKind::ReadAfterWrite);
    }

    #[test]
    fn synchronized_accesses_do_not_race() {
        let (det, mut vcs) = setup(2);
        let (t0, t1) = (ThreadId::new(0), ThreadId::new(1));
        vcs[0].increment(t0).unwrap();
        det.check_write(&vcs[0], t0, 0, 4).unwrap();
        // Simulate t0 releasing a lock t1 then acquires: t1 joins t0's VC.
        let release = vcs[0].clone();
        vcs[1].join(&release);
        det.check_read(&vcs[1], t1, 0, 4).unwrap();
        det.check_write(&vcs[1], t1, 0, 4).unwrap();
    }

    #[test]
    fn war_is_deliberately_not_detected() {
        // Thread 0 reads, thread 1 writes, unordered: a WAR race that CLEAN
        // chooses to miss (Section 3.1).
        let (det, mut vcs) = setup(2);
        det.check_read(&vcs[0], ThreadId::new(0), 32, 4).unwrap();
        vcs[1].increment(ThreadId::new(1)).unwrap();
        det.check_write(&vcs[1], ThreadId::new(1), 32, 4).unwrap();
    }

    #[test]
    fn same_thread_rewrites_never_race() {
        let (det, mut vcs) = setup(2);
        let t0 = ThreadId::new(0);
        for _ in 0..5 {
            det.check_write(&vcs[0], t0, 8, 8).unwrap();
            det.check_read(&vcs[0], t0, 8, 8).unwrap();
            vcs[0].increment(t0).unwrap();
        }
    }

    #[test]
    fn update_skipped_when_epoch_current() {
        let (det, vcs) = setup(1);
        let t0 = ThreadId::new(0);
        det.check_write(&vcs[0], t0, 0, 4).unwrap();
        let before = det.stats().epoch_updates;
        det.check_write(&vcs[0], t0, 0, 4).unwrap();
        let after = det.stats();
        assert_eq!(after.epoch_updates, before, "no redundant publication");
        assert!(after.update_skipped >= 1);
    }

    #[test]
    fn partial_overlap_detects_race_on_single_byte() {
        let (det, mut vcs) = setup(2);
        vcs[0].increment(ThreadId::new(0)).unwrap();
        // t0 writes one byte inside an 8-byte region.
        det.check_write(&vcs[0], ThreadId::new(0), 19, 1).unwrap();
        // t1 reads the full 8 bytes: must race because of byte 19.
        let race = det
            .check_read(&vcs[1], ThreadId::new(1), 16, 8)
            .unwrap_err();
        assert_eq!(race.kind, RaceKind::ReadAfterWrite);
        assert_eq!(race.addr, 19);
    }

    #[test]
    fn non_vectorized_matches_vectorized_verdicts() {
        for vectorized in [false, true] {
            let det = CleanDetector::new(4096, DetectorConfig::new().vectorized(vectorized));
            let layout = det.layout();
            let mut vc0 = VectorClock::new(2, layout);
            let vc1 = VectorClock::new(2, layout);
            vc0.increment(ThreadId::new(0)).unwrap();
            det.check_write(&vc0, ThreadId::new(0), 0, 8).unwrap();
            assert!(det.check_read(&vc1, ThreadId::new(1), 0, 8).is_err());
            let mut synced = VectorClock::new(2, layout);
            synced.join(&vc0);
            assert!(det.check_read(&synced, ThreadId::new(1), 0, 8).is_ok());
        }
    }

    #[test]
    fn vectorized_fast_path_is_counted() {
        let (det, vcs) = setup(1);
        det.check_write(&vcs[0], ThreadId::new(0), 0, 8).unwrap();
        det.check_read(&vcs[0], ThreadId::new(0), 0, 8).unwrap();
        assert!(det.stats().uniform_fast_path >= 1);
    }

    #[test]
    fn mixed_epochs_take_slow_path() {
        let (det, mut vcs) = setup(2);
        let (t0, t1) = (ThreadId::new(0), ThreadId::new(1));
        det.check_write(&vcs[0], t0, 0, 4).unwrap();
        // Synchronize t1 after t0, then t1 writes adjacent bytes.
        let release = vcs[0].clone();
        vcs[1].join(&release);
        vcs[1].increment(t1).unwrap();
        det.check_write(&vcs[1], t1, 4, 4).unwrap();
        // An 8-byte read spanning both regions sees two different epochs.
        let mut reader = VectorClock::new(2, det.layout());
        reader.join(&vcs[1]);
        reader.join(&vcs[0]);
        det.check_read(&reader, t0, 0, 8).unwrap();
        assert!(det.stats().per_byte_slow_path >= 1);
    }

    #[test]
    fn reset_forgets_history() {
        let (det, mut vcs) = setup(2);
        vcs[0].increment(ThreadId::new(0)).unwrap();
        det.check_write(&vcs[0], ThreadId::new(0), 0, 4).unwrap();
        det.reset_metadata();
        // Reset clears thread VCs too in a real run; here even the stale
        // reader passes because the epoch record is gone — the known,
        // accepted miss of Section 4.5.
        let fresh = VectorClock::new(2, det.layout());
        det.check_read(&fresh, ThreadId::new(1), 0, 4).unwrap();
    }

    #[test]
    fn check_access_dispatch() {
        let (det, vcs) = setup(1);
        det.check_access(AccessKind::Write, &vcs[0], ThreadId::new(0), 0, 2)
            .unwrap();
        det.check_access(AccessKind::Read, &vcs[0], ThreadId::new(0), 0, 2)
            .unwrap();
        let mut st = ThreadCheckState::new();
        det.check_access_with(AccessKind::Write, &vcs[0], ThreadId::new(0), 0, 2, &mut st)
            .unwrap();
        det.check_access_with(AccessKind::Read, &vcs[0], ThreadId::new(0), 0, 2, &mut st)
            .unwrap();
    }

    #[test]
    fn locked_atomicity_gives_identical_verdicts() {
        for mode in [AtomicityMode::LockFree, AtomicityMode::PerCheckLocking] {
            let det = CleanDetector::new(4096, DetectorConfig::new().atomicity(mode));
            let layout = det.layout();
            let mut vc0 = VectorClock::new(2, layout);
            let vc1 = VectorClock::new(2, layout);
            vc0.increment(ThreadId::new(0)).unwrap();
            det.check_write(&vc0, ThreadId::new(0), 0, 8).unwrap();
            assert!(det.check_write(&vc1, ThreadId::new(1), 0, 8).is_err());
            let mut synced = VectorClock::new(2, layout);
            synced.join(&vc0);
            assert!(det.check_read(&synced, ThreadId::new(1), 0, 8).is_ok());
        }
    }

    #[test]
    fn locked_atomicity_is_concurrency_safe() {
        use std::sync::Arc;
        let det = Arc::new(CleanDetector::new(
            4096,
            DetectorConfig::new().atomicity(AtomicityMode::PerCheckLocking),
        ));
        let layout = det.layout();
        let mut handles = Vec::new();
        for t in 0..4u16 {
            let det = Arc::clone(&det);
            handles.push(std::thread::spawn(move || {
                let mut vc = VectorClock::new(4, layout);
                vc.increment(ThreadId::new(t)).unwrap();
                // Disjoint regions: no races, heavy lock traffic.
                for i in 0..200 {
                    let addr = t as usize * 512 + (i % 64) * 8;
                    det.check_write(&vc, ThreadId::new(t), addr, 8).unwrap();
                    det.check_read(&vc, ThreadId::new(t), addr, 8).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(det.stats().races_reported, 0);
    }

    #[test]
    fn epoch_at_reflects_publication() {
        let (det, mut vcs) = setup(1);
        let t0 = ThreadId::new(0);
        vcs[0].increment(t0).unwrap();
        det.check_write(&vcs[0], t0, 40, 4).unwrap();
        let e = det.epoch_at(40);
        assert_eq!(det.layout().tid(e), t0);
        assert_eq!(det.layout().clock(e), 1);
        assert_eq!(det.epoch_at(44), Epoch::ZERO);
    }

    #[test]
    fn filter_hits_are_counted_and_redundant() {
        let (det, mut vcs) = setup(1);
        let t0 = ThreadId::new(0);
        vcs[0].increment(t0).unwrap();
        let mut st = ThreadCheckState::new();
        det.check_write_with(&vcs[0], t0, 0, 8, &mut st).unwrap();
        let updates_after_first = det.stats().epoch_updates;
        // Repeat writes and reads of the published range: all filter hits,
        // no further shadow traffic.
        for _ in 0..10 {
            det.check_write_with(&vcs[0], t0, 0, 8, &mut st).unwrap();
            det.check_read_with(&vcs[0], t0, 0, 8, &mut st).unwrap();
            det.check_read_with(&vcs[0], t0, 0, 4, &mut st).unwrap();
        }
        // Under deferred stats (the default) the hits are batched in the
        // per-thread state until drained.
        assert_eq!(det.stats().filter_hits, 0);
        assert_eq!(st.pending.filter_hits, 30);
        assert_eq!(st.pending.reads_checked, 20);
        assert_eq!(st.pending.writes_checked, 10);
        assert_eq!(st.pending.bytes_checked, 10 * (8 + 8 + 4));
        det.drain_check_state(t0, &mut st);
        assert!(st.pending.is_empty());
        let s = det.stats();
        assert_eq!(s.epoch_updates, updates_after_first);
        assert_eq!(s.filter_hits, 30);
        assert_eq!(s.reads_checked, 20);
        assert_eq!(s.writes_checked, 11);
        // Draining again is a no-op.
        det.drain_check_state(t0, &mut st);
        assert_eq!(det.stats().filter_hits, 30);
        // The shadow state is exactly what the unfiltered path would leave.
        assert_eq!(det.epoch_at(0), vcs[0].write_epoch(t0));
    }

    #[test]
    fn undeferred_stats_hit_the_shared_counters_directly() {
        let cfg = DetectorConfig::new().deferred_stats(false);
        let det = CleanDetector::new(1 << 16, cfg);
        let t0 = ThreadId::new(0);
        let mut vc = VectorClock::new(1, det.layout());
        vc.increment(t0).unwrap();
        let mut st = ThreadCheckState::new();
        det.check_write_with(&vc, t0, 0, 8, &mut st).unwrap();
        det.check_write_with(&vc, t0, 0, 8, &mut st).unwrap();
        assert!(st.pending.is_empty());
        assert_eq!(det.stats().filter_hits, 1);
        assert_eq!(det.stats().writes_checked, 2);
    }

    #[test]
    fn filter_entries_die_with_the_epoch() {
        let (det, mut vcs) = setup(2);
        let (t0, t1) = (ThreadId::new(0), ThreadId::new(1));
        let mut st0 = ThreadCheckState::new();
        vcs[0].increment(t0).unwrap();
        det.check_write_with(&vcs[0], t0, 0, 8, &mut st0).unwrap();
        // t0 releases (epoch bump): the cached range must stop hitting.
        vcs[0].increment(t0).unwrap();
        det.drain_check_state(t0, &mut st0);
        st0.on_epoch_increment();
        let hits_before = det.stats().filter_hits;
        det.check_write_with(&vcs[0], t0, 0, 8, &mut st0).unwrap();
        det.drain_check_state(t0, &mut st0);
        assert_eq!(det.stats().filter_hits, hits_before, "no stale hit");
        // And even without the explicit flush the epoch tag invalidates.
        let mut st1 = ThreadCheckState::new();
        let release = vcs[0].clone();
        vcs[1].join(&release);
        det.check_read_with(&vcs[1], t1, 0, 8, &mut st1).unwrap();
    }

    #[test]
    fn fast_path_verdicts_match_plain_path() {
        // Race scenarios through the *_with entry points must produce the
        // same reports as the plain ones, knob combinations included.
        for (filter, cache) in [(false, false), (true, false), (false, true), (true, true)] {
            let cfg = DetectorConfig::new().write_filter(filter).page_cache(cache);
            let det = CleanDetector::new(1 << 16, cfg);
            let layout = det.layout();
            let (t0, t1) = (ThreadId::new(0), ThreadId::new(1));
            let mut vc0 = VectorClock::new(2, layout);
            let vc1 = VectorClock::new(2, layout);
            let mut st0 = ThreadCheckState::new();
            let mut st1 = ThreadCheckState::new();
            vc0.increment(t0).unwrap();
            det.check_write_with(&vc0, t0, 64, 4, &mut st0).unwrap();
            det.check_write_with(&vc0, t0, 64, 4, &mut st0).unwrap();
            let race = det.check_write_with(&vc1, t1, 64, 4, &mut st1).unwrap_err();
            assert_eq!(race.kind, RaceKind::WriteAfterWrite);
            assert_eq!(race.addr, 64);
            assert_eq!(race.previous_tid(), t0);
            assert_eq!(race.previous_clock(), 1);
        }
    }

    #[test]
    fn page_straddling_write_publishes_both_pages() {
        use crate::shadow::PAGE_EPOCHS;
        let (det, mut vcs) = setup(2);
        let (t0, t1) = (ThreadId::new(0), ThreadId::new(1));
        vcs[0].increment(t0).unwrap();
        // An 8-byte write with 4 bytes on each side of the page boundary.
        let base = PAGE_EPOCHS - 4;
        det.check_write(&vcs[0], t0, base, 8).unwrap();
        assert_eq!(det.epoch_at(PAGE_EPOCHS - 1), vcs[0].write_epoch(t0));
        assert_eq!(det.epoch_at(PAGE_EPOCHS), vcs[0].write_epoch(t0));
        // An unordered read touching only the second-page half must still
        // see the published epoch and race, with the right first byte.
        let race = det.check_read(&vcs[1], t1, PAGE_EPOCHS + 2, 2).unwrap_err();
        assert_eq!(race.kind, RaceKind::ReadAfterWrite);
        assert_eq!(race.addr, PAGE_EPOCHS + 2);
    }

    #[test]
    fn fast_path_handles_page_straddles_like_plain_path() {
        use crate::shadow::PAGE_EPOCHS;
        // Straddling ranges defeat both the page cache (which only serves
        // single-page ranges) and never split filter entries: verdicts and
        // shadow state must match the plain path on every knob setting.
        for (filter, cache) in [(false, false), (true, false), (false, true), (true, true)] {
            let cfg = DetectorConfig::new().write_filter(filter).page_cache(cache);
            let det = CleanDetector::new(1 << 16, cfg);
            let layout = det.layout();
            let (t0, t1) = (ThreadId::new(0), ThreadId::new(1));
            let mut vc0 = VectorClock::new(2, layout);
            let vc1 = VectorClock::new(2, layout);
            let mut st0 = ThreadCheckState::new();
            let mut st1 = ThreadCheckState::new();
            vc0.increment(t0).unwrap();
            let base = 2 * PAGE_EPOCHS - 3;
            det.check_write_with(&vc0, t0, base, 8, &mut st0).unwrap();
            // The repeat of a successfully published straddle is a filter
            // hit when the filter is on — one entry covers both pages.
            let hits = det.stats().filter_hits;
            det.check_write_with(&vc0, t0, base, 8, &mut st0).unwrap();
            det.check_read_with(&vc0, t0, base, 8, &mut st0).unwrap();
            det.drain_check_state(t0, &mut st0);
            assert_eq!(det.stats().filter_hits, hits + if filter { 2 } else { 0 });
            // Cross-thread, unordered: race on the first straddled byte.
            let race = det
                .check_write_with(&vc1, t1, base, 8, &mut st1)
                .unwrap_err();
            assert_eq!(race.kind, RaceKind::WriteAfterWrite);
            assert_eq!(race.addr, base);
            // Both halves really were published.
            assert_eq!(det.epoch_at(2 * PAGE_EPOCHS - 1), vc0.write_epoch(t0));
            assert_eq!(det.epoch_at(2 * PAGE_EPOCHS + 4), vc0.write_epoch(t0));
        }
    }

    fn plan_of(entries: Vec<clean_plan::PlanEntry>) -> Arc<CompiledPlan> {
        Arc::new(
            clean_plan::CheckPlan {
                entries,
                profile: None,
            }
            .compile()
            .unwrap(),
        )
    }

    fn elide_entry(lo: usize, hi: usize, owner: u32) -> clean_plan::PlanEntry {
        clean_plan::PlanEntry {
            lo,
            hi,
            action: clean_plan::PlanAction::Elide,
            witness: Some(clean_plan::Witness {
                owner,
                observed: 1,
                foreign: 0,
            }),
        }
    }

    fn action_entry(lo: usize, hi: usize, action: clean_plan::PlanAction) -> clean_plan::PlanEntry {
        clean_plan::PlanEntry {
            lo,
            hi,
            action,
            witness: None,
        }
    }

    #[test]
    fn plan_elide_skips_owner_but_not_foreign_threads() {
        let cfg = DetectorConfig::new().check_plan(Some(plan_of(vec![elide_entry(0, 0x100, 0)])));
        let det = CleanDetector::new(1 << 16, cfg);
        let (t0, t1) = (ThreadId::new(0), ThreadId::new(1));
        let mut vc0 = VectorClock::new(2, det.layout());
        let vc1 = VectorClock::new(2, det.layout());
        let mut st0 = ThreadCheckState::new();
        let mut st1 = ThreadCheckState::new();
        vc0.increment(t0).unwrap();
        // Owner accesses inside the range: fully elided — no check, no
        // publication, no shared-stat traffic until drained.
        det.check_write_with(&vc0, t0, 0x10, 8, &mut st0).unwrap();
        det.check_read_with(&vc0, t0, 0x10, 8, &mut st0).unwrap();
        assert_eq!(st0.pending.plan_elided, 2);
        assert_eq!(det.epoch_at(0x10), Epoch::ZERO, "no publication");
        assert_eq!(det.stats().total_checked(), 0);
        det.drain_check_state(t0, &mut st0);
        assert_eq!(det.stats().plan_elided, 2);
        // A foreign thread in the same range takes the full check path.
        det.check_write_with(&vc1, t1, 0x10, 8, &mut st1).unwrap();
        assert_eq!(det.epoch_at(0x10), vc1.write_epoch(t1));
        assert_eq!(det.stats().writes_checked, 1);
        // Owner accesses outside the planned footprint are checked.
        det.check_write_with(&vc0, t0, 0x200, 8, &mut st0).unwrap();
        assert_eq!(det.epoch_at(0x200), vc0.write_epoch(t0));
    }

    #[test]
    fn plan_coalesce_covers_a_whole_sweep_with_one_range() {
        let cfg = DetectorConfig::new().check_plan(Some(plan_of(vec![action_entry(
            0,
            0x1000,
            clean_plan::PlanAction::Coalesce,
        )])));
        let det = CleanDetector::new(1 << 16, cfg);
        let t0 = ThreadId::new(0);
        let mut vc = VectorClock::new(1, det.layout());
        vc.increment(t0).unwrap();
        let mut st = ThreadCheckState::new();
        // A strided sweep: each write extends one growable range entry.
        for i in 0..512 {
            det.check_write_with(&vc, t0, i * 8, 8, &mut st).unwrap();
        }
        // A re-read of the ENTIRE swept region is a single filter hit —
        // the direct-mapped slots could at best cover one 8-byte stride.
        det.check_read_with(&vc, t0, 0, 4096, &mut st).unwrap();
        assert_eq!(st.pending.filter_hits, 1);
        det.drain_check_state(t0, &mut st);
        let s = det.stats();
        assert_eq!(s.filter_hits, 1);
        // Shadow state matches what the unplanned path would leave.
        assert_eq!(det.epoch_at(0), vc.write_epoch(t0));
        assert_eq!(det.epoch_at(4095), vc.write_epoch(t0));
    }

    #[test]
    fn plan_batch_keeps_verdicts_and_counts_batched_spans() {
        let plan = plan_of(vec![action_entry(0, 0x1000, clean_plan::PlanAction::Batch)]);
        for planned in [false, true] {
            let cfg = DetectorConfig::new().check_plan(planned.then(|| Arc::clone(&plan)));
            let det = CleanDetector::new(1 << 16, cfg);
            let (t0, t1) = (ThreadId::new(0), ThreadId::new(1));
            let mut vc0 = VectorClock::new(2, det.layout());
            let vc1 = VectorClock::new(2, det.layout());
            let mut st0 = ThreadCheckState::new();
            let mut st1 = ThreadCheckState::new();
            vc0.increment(t0).unwrap();
            det.check_write_with(&vc0, t0, 0x40, 64, &mut st0).unwrap();
            let race = det
                .check_read_with(&vc1, t1, 0x40, 64, &mut st1)
                .unwrap_err();
            assert_eq!(race.kind, RaceKind::ReadAfterWrite);
            assert_eq!(race.addr, 0x40);
            assert_eq!(det.stats().plan_batched > 0, planned);
        }
    }

    #[test]
    fn accesses_straddling_plan_ranges_take_the_unplanned_path() {
        // Elide range ends at 0x100; an access straddling out of it gets
        // no decision and is fully checked — even for the owner.
        let cfg = DetectorConfig::new().check_plan(Some(plan_of(vec![elide_entry(0, 0x100, 0)])));
        let det = CleanDetector::new(1 << 16, cfg);
        let t0 = ThreadId::new(0);
        let mut vc = VectorClock::new(1, det.layout());
        vc.increment(t0).unwrap();
        let mut st = ThreadCheckState::new();
        det.check_write_with(&vc, t0, 0xfc, 8, &mut st).unwrap();
        assert_eq!(st.pending.plan_elided, 0);
        assert_eq!(det.epoch_at(0xfc), vc.write_epoch(t0));
        assert_eq!(det.stats().writes_checked, 1);
    }

    #[test]
    fn obs_bridge_mirrors_drains_and_races() {
        let registry = clean_obs::Registry::new();
        let mut det = CleanDetector::new(1 << 16, DetectorConfig::new());
        det.attach_obs(DetectorObs::new(&registry));
        let (t0, t1) = (ThreadId::new(0), ThreadId::new(1));
        let mut vc0 = VectorClock::new(2, det.layout());
        let vc1 = VectorClock::new(2, det.layout());
        vc0.increment(t0).unwrap();
        let mut st = ThreadCheckState::new();
        det.check_write_with(&vc0, t0, 0, 8, &mut st).unwrap();
        det.check_write_with(&vc0, t0, 0, 8, &mut st).unwrap();
        det.check_read_with(&vc0, t0, 0, 8, &mut st).unwrap();
        // Nothing reaches the registry until the SFR-boundary drain.
        let snap = registry.snapshot();
        assert_eq!(snap.counter("detector_filter_hits", &[]), Some(0));
        det.drain_check_state(t0, &mut st);
        let snap = registry.snapshot();
        assert_eq!(snap.counter("detector_sfr_drains", &[]), Some(1));
        assert_eq!(snap.counter("detector_filter_hits", &[]), Some(2));
        assert_eq!(snap.counter("detector_races_total", &[]), Some(0));
        // A race report lands immediately (reports are rare).
        det.check_write(&vc1, t1, 0, 8).unwrap_err();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("detector_races_total", &[]), Some(1));
        // An empty drain mirrors nothing.
        det.drain_check_state(t0, &mut st);
        assert_eq!(
            registry.snapshot().counter("detector_sfr_drains", &[]),
            Some(1)
        );
    }

    #[test]
    fn filter_survives_reset_via_generation_tag() {
        let (det, mut vcs) = setup(1);
        let t0 = ThreadId::new(0);
        vcs[0].increment(t0).unwrap();
        let mut st = ThreadCheckState::new();
        det.check_write_with(&vcs[0], t0, 0, 8, &mut st).unwrap();
        det.reset_metadata();
        // Same thread epoch, new generation: the entry must not hit (the
        // shadow now reads zero, not our epoch).
        let hits = det.stats().filter_hits;
        det.check_write_with(&vcs[0], t0, 0, 8, &mut st).unwrap();
        det.drain_check_state(t0, &mut st);
        assert_eq!(det.stats().filter_hits, hits);
        assert_eq!(det.epoch_at(0), vcs[0].write_epoch(t0));
    }
}
