//! Detection statistics — the measured quantities behind Figures 7, 8
//! and 10 of the paper.

use std::sync::atomic::{AtomicU64, Ordering};

/// Thread-safe counters accumulated by the detector.
///
/// All counters are monotone and updated with relaxed atomics; a snapshot
/// taken while threads run is approximate but each final value (after the
/// program quiesces) is exact.
#[derive(Debug, Default)]
pub struct DetectorStats {
    /// Shared read accesses checked.
    pub reads_checked: AtomicU64,
    /// Shared write accesses checked.
    pub writes_checked: AtomicU64,
    /// Total data bytes covered by checked accesses.
    pub bytes_checked: AtomicU64,
    /// Multi-byte accesses whose epochs were all equal, resolved with the
    /// single-comparison fast path of Section 4.4.
    pub uniform_fast_path: AtomicU64,
    /// Multi-byte accesses that fell back to per-byte checks.
    pub per_byte_slow_path: AtomicU64,
    /// Epoch updates published (Figure 2, line 6).
    pub epoch_updates: AtomicU64,
    /// Write checks that skipped the update because the epoch was already
    /// current (Figure 2, line 5 `epoch != newEpoch` false).
    pub update_skipped: AtomicU64,
    /// CAS publications that failed, i.e. WAW races caught by the
    /// Section 4.3 atomicity mechanism rather than the clock comparison.
    pub cas_conflicts: AtomicU64,
    /// Races reported.
    pub races_reported: AtomicU64,
}

/// A plain-value snapshot of [`DetectorStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Shared read accesses checked.
    pub reads_checked: u64,
    /// Shared write accesses checked.
    pub writes_checked: u64,
    /// Total data bytes covered by checked accesses.
    pub bytes_checked: u64,
    /// Accesses resolved by the uniform-epoch fast path.
    pub uniform_fast_path: u64,
    /// Accesses that required per-byte checks.
    pub per_byte_slow_path: u64,
    /// Epoch updates published.
    pub epoch_updates: u64,
    /// Redundant updates skipped.
    pub update_skipped: u64,
    /// CAS conflicts (concurrent WAW captures).
    pub cas_conflicts: u64,
    /// Races reported.
    pub races_reported: u64,
}

impl StatsSnapshot {
    /// Total accesses checked.
    pub fn total_checked(&self) -> u64 {
        self.reads_checked + self.writes_checked
    }

    /// Fraction of multi-byte accesses resolved by the fast path
    /// (the ">99.7%" quantity of Section 6.2.3).
    pub fn fast_path_fraction(&self) -> f64 {
        let total = self.uniform_fast_path + self.per_byte_slow_path;
        if total == 0 {
            return 1.0;
        }
        self.uniform_fast_path as f64 / total as f64
    }
}

impl DetectorStats {
    /// Creates zeroed statistics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a consistent-enough snapshot of all counters.
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            reads_checked: self.reads_checked.load(Ordering::Relaxed),
            writes_checked: self.writes_checked.load(Ordering::Relaxed),
            bytes_checked: self.bytes_checked.load(Ordering::Relaxed),
            uniform_fast_path: self.uniform_fast_path.load(Ordering::Relaxed),
            per_byte_slow_path: self.per_byte_slow_path.load(Ordering::Relaxed),
            epoch_updates: self.epoch_updates.load(Ordering::Relaxed),
            update_skipped: self.update_skipped.load(Ordering::Relaxed),
            cas_conflicts: self.cas_conflicts.load(Ordering::Relaxed),
            races_reported: self.races_reported.load(Ordering::Relaxed),
        }
    }

    #[inline]
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let s = DetectorStats::new();
        DetectorStats::bump(&s.reads_checked);
        DetectorStats::bump(&s.reads_checked);
        DetectorStats::bump(&s.writes_checked);
        DetectorStats::add(&s.bytes_checked, 12);
        let snap = s.snapshot();
        assert_eq!(snap.reads_checked, 2);
        assert_eq!(snap.writes_checked, 1);
        assert_eq!(snap.bytes_checked, 12);
        assert_eq!(snap.total_checked(), 3);
    }

    #[test]
    fn fast_path_fraction_edges() {
        let snap = StatsSnapshot::default();
        assert_eq!(snap.fast_path_fraction(), 1.0);
        let snap = StatsSnapshot {
            uniform_fast_path: 997,
            per_byte_slow_path: 3,
            ..Default::default()
        };
        assert!((snap.fast_path_fraction() - 0.997).abs() < 1e-12);
    }
}
