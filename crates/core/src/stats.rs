//! Detection statistics — the measured quantities behind Figures 7, 8
//! and 10 of the paper.
//!
//! Counters live in cache-line-padded *shards* so concurrent threads do
//! not contend on (or false-share) the same lines while the detector is
//! hot; [`DetectorStats::snapshot`] sums the shards into the plain-value
//! [`StatsSnapshot`] totals. A single-shard instance degenerates to the
//! old globally shared layout.

use std::sync::atomic::{AtomicU64, Ordering};

/// One cache-line-padded bundle of detection counters.
///
/// All counters are monotone and updated with relaxed atomics; a snapshot
/// taken while threads run is approximate but each final value (after the
/// program quiesces) is exact.
#[derive(Debug, Default)]
#[repr(align(128))]
pub struct StatsShard {
    /// Shared read accesses checked.
    pub reads_checked: AtomicU64,
    /// Shared write accesses checked.
    pub writes_checked: AtomicU64,
    /// Total data bytes covered by checked accesses.
    pub bytes_checked: AtomicU64,
    /// Multi-byte accesses whose epochs were all equal, resolved with the
    /// single-comparison fast path of Section 4.4.
    pub uniform_fast_path: AtomicU64,
    /// Multi-byte accesses that fell back to per-byte checks.
    pub per_byte_slow_path: AtomicU64,
    /// Epoch updates published (Figure 2, line 6).
    pub epoch_updates: AtomicU64,
    /// Write checks that skipped the update because the epoch was already
    /// current (Figure 2, line 5 `epoch != newEpoch` false).
    pub update_skipped: AtomicU64,
    /// CAS publications that failed, i.e. WAW races caught by the
    /// Section 4.3 atomicity mechanism rather than the clock comparison.
    pub cas_conflicts: AtomicU64,
    /// Races reported.
    pub races_reported: AtomicU64,
    /// Checks answered entirely by the per-thread SFR write-set filter
    /// (the software analogue of the paper's Section 5 LLC-ownership
    /// redundant-check elimination).
    pub filter_hits: AtomicU64,
    /// Checks skipped because a compiled check plan proved the range
    /// thread-private for the accessing thread.
    pub plan_elided: AtomicU64,
    /// Multi-byte accesses resolved by the plan-directed chunked
    /// (batched) epoch-compare loop.
    pub plan_batched: AtomicU64,
}

/// Thread-safe counters accumulated by the detector, sharded by thread.
#[derive(Debug)]
pub struct DetectorStats {
    shards: Box<[StatsShard]>,
}

impl Default for DetectorStats {
    fn default() -> Self {
        Self::new()
    }
}

/// A plain-value snapshot of [`DetectorStats`], summed across shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsSnapshot {
    /// Shared read accesses checked.
    pub reads_checked: u64,
    /// Shared write accesses checked.
    pub writes_checked: u64,
    /// Total data bytes covered by checked accesses.
    pub bytes_checked: u64,
    /// Accesses resolved by the uniform-epoch fast path.
    pub uniform_fast_path: u64,
    /// Accesses that required per-byte checks.
    pub per_byte_slow_path: u64,
    /// Epoch updates published.
    pub epoch_updates: u64,
    /// Redundant updates skipped.
    pub update_skipped: u64,
    /// CAS conflicts (concurrent WAW captures).
    pub cas_conflicts: u64,
    /// Races reported.
    pub races_reported: u64,
    /// Checks answered by the SFR write-set filter.
    pub filter_hits: u64,
    /// Checks skipped under a compiled plan's elide ranges.
    pub plan_elided: u64,
    /// Accesses resolved by the plan-directed chunked compare loop.
    pub plan_batched: u64,
}

impl StatsSnapshot {
    /// Total accesses checked (filter hits included: a filtered check is
    /// still a checked access, answered by cached knowledge).
    pub fn total_checked(&self) -> u64 {
        self.reads_checked + self.writes_checked
    }

    /// Fraction of multi-byte accesses resolved by the fast path
    /// (the ">99.7%" quantity of Section 6.2.3).
    pub fn fast_path_fraction(&self) -> f64 {
        let total = self.uniform_fast_path + self.per_byte_slow_path;
        if total == 0 {
            return 1.0;
        }
        self.uniform_fast_path as f64 / total as f64
    }
}

impl DetectorStats {
    /// Creates zeroed single-shard statistics (the contended layout —
    /// every thread bumps the same cache lines).
    pub fn new() -> Self {
        Self::with_shards(1)
    }

    /// Creates zeroed statistics spread over `shards` padded shards
    /// (clamped to at least one).
    pub fn with_shards(shards: usize) -> Self {
        let shards = shards.max(1);
        DetectorStats {
            shards: (0..shards).map(|_| StatsShard::default()).collect(),
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard thread `tid_index` should bump. With one shard this is
    /// the shared bundle; with more, threads spread across lines.
    #[inline]
    pub fn shard(&self, tid_index: usize) -> &StatsShard {
        &self.shards[tid_index % self.shards.len()]
    }

    /// Takes a consistent-enough snapshot: each counter summed over all
    /// shards.
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut s = StatsSnapshot::default();
        for shard in self.shards.iter() {
            s.reads_checked += shard.reads_checked.load(Ordering::Relaxed);
            s.writes_checked += shard.writes_checked.load(Ordering::Relaxed);
            s.bytes_checked += shard.bytes_checked.load(Ordering::Relaxed);
            s.uniform_fast_path += shard.uniform_fast_path.load(Ordering::Relaxed);
            s.per_byte_slow_path += shard.per_byte_slow_path.load(Ordering::Relaxed);
            s.epoch_updates += shard.epoch_updates.load(Ordering::Relaxed);
            s.update_skipped += shard.update_skipped.load(Ordering::Relaxed);
            s.cas_conflicts += shard.cas_conflicts.load(Ordering::Relaxed);
            s.races_reported += shard.races_reported.load(Ordering::Relaxed);
            s.filter_hits += shard.filter_hits.load(Ordering::Relaxed);
            s.plan_elided += shard.plan_elided.load(Ordering::Relaxed);
            s.plan_batched += shard.plan_batched.load(Ordering::Relaxed);
        }
        s
    }

    #[inline]
    pub(crate) fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    #[inline]
    pub(crate) fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_bumps() {
        let s = DetectorStats::new();
        DetectorStats::bump(&s.shard(0).reads_checked);
        DetectorStats::bump(&s.shard(0).reads_checked);
        DetectorStats::bump(&s.shard(0).writes_checked);
        DetectorStats::add(&s.shard(0).bytes_checked, 12);
        let snap = s.snapshot();
        assert_eq!(snap.reads_checked, 2);
        assert_eq!(snap.writes_checked, 1);
        assert_eq!(snap.bytes_checked, 12);
        assert_eq!(snap.total_checked(), 3);
    }

    #[test]
    fn snapshot_sums_across_shards() {
        let s = DetectorStats::with_shards(4);
        assert_eq!(s.shard_count(), 4);
        for tid in 0..9 {
            DetectorStats::bump(&s.shard(tid).reads_checked);
        }
        DetectorStats::bump(&s.shard(2).filter_hits);
        let snap = s.snapshot();
        assert_eq!(snap.reads_checked, 9);
        assert_eq!(snap.filter_hits, 1);
    }

    #[test]
    fn shard_selection_wraps() {
        let s = DetectorStats::with_shards(2);
        assert!(std::ptr::eq(s.shard(0), s.shard(2)));
        assert!(std::ptr::eq(s.shard(1), s.shard(3)));
        assert!(!std::ptr::eq(s.shard(0), s.shard(1)));
    }

    #[test]
    fn shards_are_cache_line_padded() {
        assert!(std::mem::align_of::<StatsShard>() >= 128);
        assert!(std::mem::size_of::<StatsShard>() >= 128);
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let s = DetectorStats::with_shards(0);
        assert_eq!(s.shard_count(), 1);
        DetectorStats::bump(&s.shard(7).races_reported);
        assert_eq!(s.snapshot().races_reported, 1);
    }

    #[test]
    fn fast_path_fraction_edges() {
        let snap = StatsSnapshot::default();
        assert_eq!(snap.fast_path_fraction(), 1.0);
        let snap = StatsSnapshot {
            uniform_fast_path: 997,
            per_byte_slow_path: 3,
            ..Default::default()
        };
        assert!((snap.fast_path_fraction() - 0.997).abs() < 1e-12);
    }
}
