//! Epoch representation (Section 2.3 and 4.1/4.5 of the paper).
//!
//! An *epoch* is a 32-bit integer packing the identifier of the last thread
//! to write a memory location together with the scalar clock ("main element"
//! of that thread's vector clock) at the time of the write:
//!
//! ```text
//!  31          30..clock_bits      clock_bits-1..0
//! [expanded:1][ tid : tid_bits ][ clock : clock_bits ]
//! ```
//!
//! The paper's default layout (Section 6.2.3) reserves 1 bit for the hardware
//! *expanded* flag, 8 bits for a reusable thread id and 23 bits for the
//! clock. The clock width is configurable (23 vs 28 bits) to reproduce the
//! Table 1 rollover experiment.

use core::fmt;

/// Identifier of a running thread, dense and reusable after join
/// (Section 4.5: "a thread id can be safely reused once the thread is
/// joined").
///
/// # Examples
///
/// ```
/// use clean_core::ThreadId;
/// let t = ThreadId::new(3);
/// assert_eq!(t.index(), 3);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct ThreadId(u16);

impl ThreadId {
    /// Creates a thread id from a dense index.
    pub const fn new(index: u16) -> Self {
        ThreadId(index)
    }

    /// Returns the dense index of this thread id.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw 16-bit representation.
    pub const fn raw(self) -> u16 {
        self.0
    }
}

impl fmt::Debug for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl From<ThreadId> for usize {
    fn from(t: ThreadId) -> usize {
        t.index()
    }
}

/// The bit layout of an epoch: how many of the 32 bits are devoted to the
/// thread id and to the scalar clock.
///
/// The highest bit is always reserved for the hardware *expanded* flag
/// (Section 5.3), so `tid_bits + clock_bits == 31`.
///
/// # Examples
///
/// ```
/// use clean_core::EpochLayout;
/// let l = EpochLayout::default(); // 8-bit tid, 23-bit clock
/// assert_eq!(l.clock_bits(), 23);
/// assert_eq!(l.max_threads(), 256);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct EpochLayout {
    clock_bits: u32,
}

impl EpochLayout {
    /// Number of payload bits in an epoch (all but the expanded flag).
    pub const PAYLOAD_BITS: u32 = 31;

    /// Creates a layout with the given clock width.
    ///
    /// The thread-id field receives the remaining `31 - clock_bits` bits.
    ///
    /// # Panics
    ///
    /// Panics if `clock_bits` is zero, leaves no room for a thread id, or
    /// exceeds 30.
    pub fn with_clock_bits(clock_bits: u32) -> Self {
        assert!(
            (1..=30).contains(&clock_bits),
            "clock_bits must be in 1..=30, got {clock_bits}"
        );
        EpochLayout { clock_bits }
    }

    /// The paper's default configuration: 23-bit clock, 8-bit thread id,
    /// 1 expanded bit (Section 6.2.3).
    pub const fn paper_default() -> Self {
        EpochLayout { clock_bits: 23 }
    }

    /// The wide-clock configuration used in Table 1 to eliminate rollovers:
    /// 28-bit clock, 3-bit thread id.
    pub const fn wide_clock() -> Self {
        EpochLayout { clock_bits: 28 }
    }

    /// Number of bits devoted to the clock component.
    pub const fn clock_bits(self) -> u32 {
        self.clock_bits
    }

    /// Number of bits devoted to the thread id component.
    pub const fn tid_bits(self) -> u32 {
        Self::PAYLOAD_BITS - self.clock_bits
    }

    /// Largest representable clock value before a rollover is required.
    pub const fn max_clock(self) -> u32 {
        (1u32 << self.clock_bits) - 1
    }

    /// Maximum number of concurrently running threads the layout supports.
    pub const fn max_threads(self) -> usize {
        1usize << self.tid_bits()
    }

    /// Packs a thread id and clock into an epoch.
    ///
    /// This is the `EPOCH(tid, clock)` macro of Figure 2. The expanded bit
    /// is left clear; the software implementation never sets it
    /// (Section 6.2.3 keeps 1 bit "to accommodate for hardware").
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the tid or clock do not fit the layout.
    #[inline]
    pub fn pack(self, tid: ThreadId, clock: u32) -> Epoch {
        debug_assert!(tid.index() < self.max_threads(), "tid out of range");
        debug_assert!(clock <= self.max_clock(), "clock out of range");
        Epoch(((tid.raw() as u32) << self.clock_bits) | clock)
    }

    /// Extracts the clock component — the `CLOCK(epoch)` macro of Figure 2.
    #[inline]
    pub fn clock(self, epoch: Epoch) -> u32 {
        epoch.0 & self.max_clock()
    }

    /// Extracts the thread id component — the `TID(epoch)` macro of
    /// Figure 2.
    #[inline]
    pub fn tid(self, epoch: Epoch) -> ThreadId {
        ThreadId(((epoch.0 & !Epoch::EXPANDED_BIT) >> self.clock_bits) as u16)
    }

    /// Returns true if incrementing a clock currently at `clock` would
    /// overflow the representation, i.e. a metadata reset is required
    /// before the increment (Section 4.5).
    #[inline]
    pub fn at_rollover(self, clock: u32) -> bool {
        clock >= self.max_clock()
    }
}

impl Default for EpochLayout {
    fn default() -> Self {
        Self::paper_default()
    }
}

impl fmt::Debug for EpochLayout {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EpochLayout")
            .field("tid_bits", &self.tid_bits())
            .field("clock_bits", &self.clock_bits)
            .finish()
    }
}

/// A packed (thread id, clock) pair identifying the last write to a memory
/// location (Section 2.3, "FastTrack").
///
/// The all-zero epoch is the initial state of every location and reads as
/// "written by thread 0 at clock 0", which by construction never races
/// (every vector clock element starts at or above 0).
///
/// Epochs are ordered as raw integers; within the same thread-id field this
/// coincides with clock order, which is what the Section 4.1 optimization
/// exploits to compare epochs and vector-clock elements directly.
///
/// # Examples
///
/// ```
/// use clean_core::{Epoch, EpochLayout, ThreadId};
/// let layout = EpochLayout::default();
/// let e = layout.pack(ThreadId::new(2), 17);
/// assert_eq!(layout.tid(e), ThreadId::new(2));
/// assert_eq!(layout.clock(e), 17);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Epoch(u32);

impl Epoch {
    /// Mask of the hardware *expanded* flag (Section 5.3).
    pub const EXPANDED_BIT: u32 = 1 << 31;

    /// The initial epoch of every never-written location.
    pub const ZERO: Epoch = Epoch(0);

    /// Creates an epoch from its raw 32-bit representation.
    #[inline]
    pub const fn from_raw(raw: u32) -> Self {
        Epoch(raw)
    }

    /// Returns the raw 32-bit representation.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Returns true if the hardware expanded flag is set.
    #[inline]
    pub const fn is_expanded(self) -> bool {
        self.0 & Self::EXPANDED_BIT != 0
    }

    /// Returns a copy of this epoch with the expanded flag set.
    #[inline]
    pub const fn with_expanded(self) -> Self {
        Epoch(self.0 | Self::EXPANDED_BIT)
    }

    /// Returns a copy of this epoch with the expanded flag cleared.
    #[inline]
    pub const fn without_expanded(self) -> Self {
        Epoch(self.0 & !Self::EXPANDED_BIT)
    }
}

impl fmt::Debug for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Decode with the default layout for readability; raw value is
        // included so nondefault layouts remain debuggable.
        let layout = EpochLayout::paper_default();
        write!(
            f,
            "{}@{}{}(raw={:#x})",
            layout.clock(*self),
            layout.tid(*self),
            if self.is_expanded() { "+X" } else { "" },
            self.0
        )
    }
}

impl fmt::Display for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl fmt::LowerHex for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Binary for Epoch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl From<Epoch> for u32 {
    fn from(e: Epoch) -> u32 {
        e.0
    }
}

impl From<u32> for Epoch {
    fn from(raw: u32) -> Epoch {
        Epoch(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let layout = EpochLayout::paper_default();
        for tid in [0u16, 1, 7, 255] {
            for clock in [0u32, 1, 1000, layout.max_clock()] {
                let e = layout.pack(ThreadId::new(tid), clock);
                assert_eq!(layout.tid(e), ThreadId::new(tid));
                assert_eq!(layout.clock(e), clock);
                assert!(!e.is_expanded());
            }
        }
    }

    #[test]
    fn default_layout_matches_paper() {
        let l = EpochLayout::default();
        assert_eq!(l.clock_bits(), 23);
        assert_eq!(l.tid_bits(), 8);
        assert_eq!(l.max_threads(), 256);
        assert_eq!(l.max_clock(), (1 << 23) - 1);
    }

    #[test]
    fn wide_clock_layout() {
        let l = EpochLayout::wide_clock();
        assert_eq!(l.clock_bits(), 28);
        assert_eq!(l.max_threads(), 8);
    }

    #[test]
    fn expanded_bit_roundtrip() {
        let layout = EpochLayout::paper_default();
        let e = layout.pack(ThreadId::new(5), 42);
        let x = e.with_expanded();
        assert!(x.is_expanded());
        assert!(!e.is_expanded());
        assert_eq!(x.without_expanded(), e);
        // tid/clock extraction must ignore the expanded flag.
        assert_eq!(layout.tid(x), ThreadId::new(5));
        assert_eq!(layout.clock(x), 42);
    }

    #[test]
    fn same_tid_epochs_order_by_clock() {
        let layout = EpochLayout::paper_default();
        let a = layout.pack(ThreadId::new(3), 10);
        let b = layout.pack(ThreadId::new(3), 11);
        assert!(a < b);
    }

    #[test]
    fn zero_epoch_is_thread0_clock0() {
        let layout = EpochLayout::paper_default();
        assert_eq!(layout.tid(Epoch::ZERO), ThreadId::new(0));
        assert_eq!(layout.clock(Epoch::ZERO), 0);
    }

    #[test]
    fn rollover_detection() {
        let l = EpochLayout::with_clock_bits(4);
        assert!(!l.at_rollover(14));
        assert!(l.at_rollover(15));
        assert!(l.at_rollover(16));
    }

    #[test]
    #[should_panic]
    fn rejects_zero_clock_bits() {
        let _ = EpochLayout::with_clock_bits(0);
    }

    #[test]
    #[should_panic]
    fn rejects_31_clock_bits() {
        let _ = EpochLayout::with_clock_bits(31);
    }

    #[test]
    fn hex_formatting_is_nonempty() {
        let e = Epoch::from_raw(0xdead);
        assert_eq!(format!("{e:x}"), "dead");
        assert_eq!(format!("{e:X}"), "DEAD");
        assert!(!format!("{e:b}").is_empty());
        assert!(!format!("{e:?}").is_empty());
    }
}
