//! The epoch table — CLEAN's shadow memory (Sections 4.2 and 4.5).
//!
//! The paper reserves a fixed region of the address space holding one
//! 32-bit epoch per byte of program data, at `epochs_base_address + 4x`.
//! Because the layout is fixed the `EPOCH_ADDRESS` computation is a single
//! shift, and because only touched pages are ever materialized the physical
//! footprint is proportional to the *accessed* shared data.
//!
//! This module reproduces both properties:
//!
//! * [`ShadowMemory`] is a lazily-populated page table: pages are allocated
//!   on first write, so untouched regions cost nothing (Section 4.2).
//! * Deterministic resets (Section 4.5) are O(1): instead of zeroing the
//!   region, a global generation counter is bumped; pages whose generation
//!   is stale read as zero — the software analogue of remapping epoch pages
//!   to the kernel's copy-on-write zero page.

use crate::epoch::Epoch;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Number of epochs per shadow page. 4096 epochs = 16 KiB of metadata
/// covering 4 KiB of data, mirroring an OS page of program data.
pub const PAGE_EPOCHS: usize = 4096;

/// Chunk width of the plan-directed batched compare loop: eight 32-bit
/// epochs, the contents of one 256-bit vector register (Section 4.4's
/// AVX analogy made literal in the access pattern).
pub const BATCH_CHUNK: usize = 8;

/// Process-wide id source for [`ShadowMemory`] instances (starts at 1 so
/// a default-constructed [`ShadowPageCache`] can never spuriously hit).
static SHADOW_UID: AtomicU64 = AtomicU64::new(1);

/// A thread-local memo of the last shadow page a thread resolved.
///
/// The cached pointer is only dereferenced when the cache's instance id
/// matches the [`ShadowMemory`] being queried *and* the cached reset
/// generation equals the instance's current generation; on any mismatch
/// the slow path re-resolves and refills. Passing a cache that was filled
/// from a different (even freed) `ShadowMemory` is therefore safe — the
/// instance id (drawn from a process-global counter, never reused) can't
/// match.
#[derive(Debug)]
pub struct ShadowPageCache {
    uid: u64,
    page_idx: usize,
    generation: u64,
    page: *const Page,
}

/// SAFETY: the raw pointer is only dereferenced under a live
/// `&ShadowMemory` borrow whose uid matches, and pages live inline in the
/// instance's never-reallocated directory, so sending the cache between
/// threads cannot create a dangling dereference.
unsafe impl Send for ShadowPageCache {}

impl Default for ShadowPageCache {
    fn default() -> Self {
        ShadowPageCache {
            uid: 0,
            page_idx: 0,
            generation: 0,
            page: std::ptr::null(),
        }
    }
}

impl ShadowPageCache {
    /// Creates an empty cache (first use always misses).
    pub fn new() -> Self {
        Self::default()
    }
}

struct Page {
    /// Generation this page's contents belong to. If it lags the global
    /// generation the page logically holds all-zero epochs.
    generation: AtomicU64,
    /// Guards the stale→fresh transition so exactly one thread clears.
    refresh: Mutex<()>,
    epochs: Box<[AtomicU32]>,
}

impl Page {
    fn new(generation: u64) -> Self {
        let epochs = (0..PAGE_EPOCHS).map(|_| AtomicU32::new(0)).collect();
        Page {
            generation: AtomicU64::new(generation),
            refresh: Mutex::new(()),
            epochs,
        }
    }

    /// Makes the page's contents valid for `global_gen`, clearing them if
    /// they belong to an older generation.
    fn freshen(&self, global_gen: u64) {
        if self.generation.load(Ordering::Acquire) == global_gen {
            return;
        }
        let _g = self.refresh.lock();
        if self.generation.load(Ordering::Acquire) == global_gen {
            return;
        }
        for e in self.epochs.iter() {
            e.store(0, Ordering::Relaxed);
        }
        self.generation.store(global_gen, Ordering::Release);
    }
}

/// Statistics about shadow-memory usage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ShadowStats {
    /// Pages materialized so far (physical footprint ∝ accessed data).
    pub pages_allocated: usize,
    /// Deterministic resets performed (Section 4.5).
    pub resets: u64,
}

/// The fixed-layout epoch table: one epoch per data byte, lazily allocated,
/// with O(1) deterministic reset.
///
/// Addresses are byte offsets into the program's shared data space.
/// All operations are thread-safe; epoch loads and stores are individually
/// atomic, and [`compare_exchange`](ShadowMemory::compare_exchange) provides
/// the CAS publish required for WAW atomicity (Section 4.3).
///
/// # Examples
///
/// ```
/// use clean_core::{Epoch, ShadowMemory};
/// let shadow = ShadowMemory::new(1 << 20);
/// assert_eq!(shadow.load(0x1234), Epoch::ZERO);
/// shadow.store(0x1234, Epoch::from_raw(7));
/// assert_eq!(shadow.load(0x1234), Epoch::from_raw(7));
/// shadow.reset();
/// assert_eq!(shadow.load(0x1234), Epoch::ZERO);
/// ```
pub struct ShadowMemory {
    pages: Box<[OnceLock<Page>]>,
    generation: AtomicU64,
    pages_allocated: AtomicUsize,
    resets: AtomicU64,
    size: usize,
    /// Process-unique instance id keying [`ShadowPageCache`] entries.
    uid: u64,
}

impl ShadowMemory {
    /// Creates a shadow region covering `data_size` bytes of program data.
    ///
    /// Only the page *directory* is allocated eagerly (one slot per 4 KiB of
    /// data); epoch pages themselves appear on first write.
    ///
    /// # Panics
    ///
    /// Panics if `data_size` is zero.
    pub fn new(data_size: usize) -> Self {
        assert!(data_size > 0, "shadow region must cover at least one byte");
        let n_pages = data_size.div_ceil(PAGE_EPOCHS);
        let pages = (0..n_pages).map(|_| OnceLock::new()).collect();
        ShadowMemory {
            pages,
            generation: AtomicU64::new(0),
            pages_allocated: AtomicUsize::new(0),
            resets: AtomicU64::new(0),
            size: data_size,
            uid: SHADOW_UID.fetch_add(1, Ordering::Relaxed),
        }
    }

    /// Size of the covered data region in bytes.
    pub fn data_size(&self) -> usize {
        self.size
    }

    /// Current reset generation (bumped by [`reset`](Self::reset)).
    pub fn generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    #[inline]
    fn split(&self, addr: usize) -> (usize, usize) {
        debug_assert!(addr < self.size, "address {addr:#x} out of shadow range");
        (addr / PAGE_EPOCHS, addr % PAGE_EPOCHS)
    }

    /// Loads the epoch of data byte `addr` (the `EPOCH_ADDRESS` dereference
    /// of Figure 2, line 2).
    ///
    /// Never allocates: unmaterialized or stale pages read as
    /// [`Epoch::ZERO`].
    #[inline]
    pub fn load(&self, addr: usize) -> Epoch {
        let (p, o) = self.split(addr);
        match self.pages[p].get() {
            Some(page) => {
                let gen = self.generation.load(Ordering::Acquire);
                if page.generation.load(Ordering::Acquire) == gen {
                    Epoch::from_raw(page.epochs[o].load(Ordering::Acquire))
                } else {
                    Epoch::ZERO
                }
            }
            None => Epoch::ZERO,
        }
    }

    fn page_for_write(&self, p: usize) -> &Page {
        self.page_for_write_at(p, self.generation.load(Ordering::Acquire))
    }

    fn page_for_write_at(&self, p: usize, gen: u64) -> &Page {
        let page = self.pages[p].get_or_init(|| {
            self.pages_allocated.fetch_add(1, Ordering::Relaxed);
            Page::new(gen)
        });
        page.freshen(gen);
        page
    }

    /// Returns the cached page if `cache` still describes page `p` of this
    /// instance under the current generation `gen`.
    #[inline]
    fn page_hit<'a>(&'a self, cache: &ShadowPageCache, p: usize, gen: u64) -> Option<&'a Page> {
        if cache.uid == self.uid && cache.page_idx == p && cache.generation == gen {
            // SAFETY: a uid match proves the pointer was taken from this
            // very instance (uids are never reused), and pages live inline
            // in `self.pages`, a boxed slice that is never reallocated, so
            // the pointee is alive for as long as `self` is borrowed. The
            // generation match proves its contents are current: the page
            // held `gen` when cached and page generations only advance
            // together with the global one.
            return Some(unsafe { &*cache.page });
        }
        None
    }

    #[inline]
    fn fill_cache(&self, cache: &mut ShadowPageCache, p: usize, gen: u64, page: &Page) {
        *cache = ShadowPageCache {
            uid: self.uid,
            page_idx: p,
            generation: gen,
            page,
        };
    }

    /// Stores `epoch` for data byte `addr`, materializing the page if
    /// needed (Figure 2, line 6 without the atomicity guard).
    #[inline]
    pub fn store(&self, addr: usize, epoch: Epoch) {
        let (p, o) = self.split(addr);
        self.page_for_write(p).epochs[o].store(epoch.raw(), Ordering::Release);
    }

    /// Atomically publishes `new` for data byte `addr` only if the current
    /// epoch still equals `expected` — the CAS of Section 4.3 that makes
    /// concurrent WAW checks sound without locks.
    ///
    /// # Errors
    ///
    /// On contention returns the epoch actually found, which the caller
    /// interprets as a concurrently published racy write.
    #[inline]
    pub fn compare_exchange(&self, addr: usize, expected: Epoch, new: Epoch) -> Result<(), Epoch> {
        let (p, o) = self.split(addr);
        self.page_for_write(p).epochs[o]
            .compare_exchange(
                expected.raw(),
                new.raw(),
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .map(|_| ())
            .map_err(Epoch::from_raw)
    }

    /// Loads the epochs of `len` consecutive data bytes into `out`.
    ///
    /// Models the vector load of Section 4.4 (e.g. one AVX load of 8
    /// epochs); the copy is not atomic across elements, exactly like the
    /// hardware it stands in for.
    ///
    /// # Panics
    ///
    /// Panics if `out.len() < len`.
    pub fn load_range(&self, addr: usize, len: usize, out: &mut [Epoch]) {
        assert!(out.len() >= len, "output buffer too small");
        for (i, slot) in out.iter_mut().take(len).enumerate() {
            *slot = self.load(addr + i);
        }
    }

    /// Returns true if all `len` bytes starting at `addr` currently carry
    /// the same epoch — the common case (>99.7% of accesses in every
    /// benchmark, Section 6.2.3) that enables the single-comparison fast
    /// path of Section 4.4.
    ///
    /// When the range lies within one shadow page the page is resolved
    /// once and the epochs compared back-to-back — the software analogue
    /// of one vector load plus one vector compare.
    pub fn range_uniform(&self, addr: usize, len: usize) -> Option<Epoch> {
        debug_assert!(len > 0);
        let (p, o) = self.split(addr);
        if o + len <= PAGE_EPOCHS {
            // Single-page fast path: one directory lookup, one generation
            // check, then a tight compare loop.
            return match self.pages[p].get() {
                Some(page)
                    if page.generation.load(Ordering::Acquire)
                        == self.generation.load(Ordering::Acquire) =>
                {
                    let first = page.epochs[o].load(Ordering::Acquire);
                    for i in 1..len {
                        if page.epochs[o + i].load(Ordering::Acquire) != first {
                            return None;
                        }
                    }
                    Some(Epoch::from_raw(first))
                }
                // Unmaterialized or stale page: the whole range reads zero.
                _ => Some(Epoch::ZERO),
            };
        }
        let first = self.load(addr);
        for i in 1..len {
            if self.load(addr + i) != first {
                return None;
            }
        }
        Some(first)
    }

    /// [`range_uniform`](Self::range_uniform) restructured as the
    /// plan-directed *batched* compare loop: element epochs are read with
    /// `Relaxed` loads accumulated branch-free over [`BATCH_CHUNK`]-wide
    /// chunks (the shape autovectorizers turn into one vector load plus
    /// one vector compare per chunk), and a single `Acquire` fence at the
    /// end upgrades every element load at once — the ordering cost of one
    /// vector operation instead of `len` scalar acquires.
    ///
    /// Semantically identical to `range_uniform`; only worth calling on
    /// spans a [`CheckPlan`](clean_plan::CheckPlan) marked `batch`, where
    /// contiguous multi-byte checked accesses dominate.
    pub fn range_uniform_batched(&self, addr: usize, len: usize) -> Option<Epoch> {
        debug_assert!(len > 0);
        let (p, o) = self.split(addr);
        if o + len > PAGE_EPOCHS {
            return self.range_uniform(addr, len);
        }
        match self.pages[p].get() {
            Some(page)
                if page.generation.load(Ordering::Acquire)
                    == self.generation.load(Ordering::Acquire) =>
            {
                Self::page_range_uniform_batched(page, o, len)
            }
            _ => Some(Epoch::ZERO),
        }
    }

    /// The batched compare kernel over one resolved page.
    #[inline]
    fn page_range_uniform_batched(page: &Page, o: usize, len: usize) -> Option<Epoch> {
        let first = page.epochs[o].load(Ordering::Relaxed);
        let mut i = 1;
        while i < len {
            let end = (i + BATCH_CHUNK).min(len);
            let mut mismatch = false;
            for j in i..end {
                // Branch-free accumulate within the chunk; mismatches
                // only cause an exit at chunk granularity, like a vector
                // compare + movemask test.
                mismatch |= page.epochs[o + j].load(Ordering::Relaxed) != first;
            }
            if mismatch {
                return None;
            }
            i = end;
        }
        // A non-uniform result needs no ordering (the caller re-checks
        // per byte); a uniform one is upgraded here, once.
        std::sync::atomic::fence(Ordering::Acquire);
        Some(Epoch::from_raw(first))
    }

    /// Atomically publishes `new` over `[addr, addr+len)` where every
    /// epoch is expected to still equal `expected` (the wide-CAS publish
    /// of Section 4.4).
    ///
    /// # Errors
    ///
    /// On the first mismatch returns the offending address and the epoch
    /// found there; earlier bytes remain updated (exactly like a sequence
    /// of hardware wide-CAS operations interrupted by a conflict — the
    /// caller reports the race and the execution stops).
    pub fn compare_exchange_range(
        &self,
        addr: usize,
        len: usize,
        expected: Epoch,
        new: Epoch,
    ) -> Result<(), (usize, Epoch)> {
        debug_assert!(len > 0);
        let (p, o) = self.split(addr);
        if o + len <= PAGE_EPOCHS {
            let page = self.page_for_write(p);
            for i in 0..len {
                if let Err(found) = page.epochs[o + i].compare_exchange(
                    expected.raw(),
                    new.raw(),
                    Ordering::AcqRel,
                    Ordering::Acquire,
                ) {
                    return Err((addr + i, Epoch::from_raw(found)));
                }
            }
            return Ok(());
        }
        for i in 0..len {
            self.compare_exchange(addr + i, expected, new)
                .map_err(|found| (addr + i, found))?;
        }
        Ok(())
    }

    /// [`load`](Self::load) through a [`ShadowPageCache`]: a hit on the
    /// thread's last page skips the directory walk, `OnceLock` resolution
    /// and per-page generation check.
    #[inline]
    pub fn load_cached(&self, addr: usize, cache: &mut ShadowPageCache) -> Epoch {
        let (p, o) = self.split(addr);
        let gen = self.generation.load(Ordering::Acquire);
        if let Some(page) = self.page_hit(cache, p, gen) {
            return Epoch::from_raw(page.epochs[o].load(Ordering::Acquire));
        }
        match self.pages[p].get() {
            Some(page) if page.generation.load(Ordering::Acquire) == gen => {
                self.fill_cache(cache, p, gen, page);
                Epoch::from_raw(page.epochs[o].load(Ordering::Acquire))
            }
            // Unmaterialized or stale pages are not cached: they have no
            // stable current-generation contents to point at.
            _ => Epoch::ZERO,
        }
    }

    /// [`range_uniform`](Self::range_uniform) through a
    /// [`ShadowPageCache`]. Ranges crossing a page boundary fall back to
    /// the uncached path (they cannot be answered by one cached page).
    #[inline]
    pub fn range_uniform_cached(
        &self,
        addr: usize,
        len: usize,
        cache: &mut ShadowPageCache,
    ) -> Option<Epoch> {
        debug_assert!(len > 0);
        let (p, o) = self.split(addr);
        if o + len > PAGE_EPOCHS {
            return self.range_uniform(addr, len);
        }
        let gen = self.generation.load(Ordering::Acquire);
        let page = match self.page_hit(cache, p, gen) {
            Some(page) => page,
            None => match self.pages[p].get() {
                Some(page) if page.generation.load(Ordering::Acquire) == gen => {
                    self.fill_cache(cache, p, gen, page);
                    page
                }
                _ => return Some(Epoch::ZERO),
            },
        };
        let first = page.epochs[o].load(Ordering::Acquire);
        for i in 1..len {
            if page.epochs[o + i].load(Ordering::Acquire) != first {
                return None;
            }
        }
        Some(Epoch::from_raw(first))
    }

    /// [`range_uniform_batched`](Self::range_uniform_batched) through a
    /// [`ShadowPageCache`]. Ranges crossing a page boundary fall back to
    /// the uncached scalar path.
    #[inline]
    pub fn range_uniform_batched_cached(
        &self,
        addr: usize,
        len: usize,
        cache: &mut ShadowPageCache,
    ) -> Option<Epoch> {
        debug_assert!(len > 0);
        let (p, o) = self.split(addr);
        if o + len > PAGE_EPOCHS {
            return self.range_uniform(addr, len);
        }
        let gen = self.generation.load(Ordering::Acquire);
        let page = match self.page_hit(cache, p, gen) {
            Some(page) => page,
            None => match self.pages[p].get() {
                Some(page) if page.generation.load(Ordering::Acquire) == gen => {
                    self.fill_cache(cache, p, gen, page);
                    page
                }
                _ => return Some(Epoch::ZERO),
            },
        };
        Self::page_range_uniform_batched(page, o, len)
    }

    /// [`compare_exchange`](Self::compare_exchange) through a
    /// [`ShadowPageCache`], filling it on miss (the write path always
    /// materializes and freshens the page, so it is always cacheable).
    #[inline]
    pub fn compare_exchange_cached(
        &self,
        addr: usize,
        expected: Epoch,
        new: Epoch,
        cache: &mut ShadowPageCache,
    ) -> Result<(), Epoch> {
        let (p, o) = self.split(addr);
        let gen = self.generation.load(Ordering::Acquire);
        let page = match self.page_hit(cache, p, gen) {
            Some(page) => page,
            None => {
                let page = self.page_for_write_at(p, gen);
                self.fill_cache(cache, p, gen, page);
                page
            }
        };
        page.epochs[o]
            .compare_exchange(
                expected.raw(),
                new.raw(),
                Ordering::AcqRel,
                Ordering::Acquire,
            )
            .map(|_| ())
            .map_err(Epoch::from_raw)
    }

    /// [`compare_exchange_range`](Self::compare_exchange_range) through a
    /// [`ShadowPageCache`]. Ranges crossing a page boundary fall back to
    /// the uncached path.
    ///
    /// # Errors
    ///
    /// Same contract as the uncached variant: the offending address and
    /// epoch on first mismatch, earlier bytes left updated.
    #[inline]
    pub fn compare_exchange_range_cached(
        &self,
        addr: usize,
        len: usize,
        expected: Epoch,
        new: Epoch,
        cache: &mut ShadowPageCache,
    ) -> Result<(), (usize, Epoch)> {
        debug_assert!(len > 0);
        let (p, o) = self.split(addr);
        if o + len > PAGE_EPOCHS {
            return self.compare_exchange_range(addr, len, expected, new);
        }
        let gen = self.generation.load(Ordering::Acquire);
        let page = match self.page_hit(cache, p, gen) {
            Some(page) => page,
            None => {
                let page = self.page_for_write_at(p, gen);
                self.fill_cache(cache, p, gen, page);
                page
            }
        };
        for i in 0..len {
            if let Err(found) = page.epochs[o + i].compare_exchange(
                expected.raw(),
                new.raw(),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                return Err((addr + i, Epoch::from_raw(found)));
            }
        }
        Ok(())
    }

    /// Deterministic O(1) metadata reset (Section 4.5): all epochs revert
    /// to zero by bumping the generation, the analogue of remapping shadow
    /// pages to the copy-on-write zero page.
    ///
    /// Callers must guarantee quiescence (no concurrent checks) — the
    /// runtime does so by parking every thread at a globally deterministic
    /// execution point first.
    pub fn reset(&self) {
        self.generation.fetch_add(1, Ordering::AcqRel);
        self.resets.fetch_add(1, Ordering::Relaxed);
    }

    /// Usage statistics.
    pub fn stats(&self) -> ShadowStats {
        ShadowStats {
            pages_allocated: self.pages_allocated.load(Ordering::Relaxed),
            resets: self.resets.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for ShadowMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShadowMemory")
            .field("data_size", &self.size)
            .field("generation", &self.generation())
            .field("stats", &self.stats())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fresh_shadow_reads_zero() {
        let s = ShadowMemory::new(64 * 1024);
        for addr in [0usize, 1, 4095, 4096, 65535] {
            assert_eq!(s.load(addr), Epoch::ZERO);
        }
        assert_eq!(s.stats().pages_allocated, 0, "loads must not allocate");
    }

    #[test]
    fn store_then_load() {
        let s = ShadowMemory::new(8192);
        s.store(5000, Epoch::from_raw(42));
        assert_eq!(s.load(5000), Epoch::from_raw(42));
        assert_eq!(s.load(5001), Epoch::ZERO);
        assert_eq!(s.stats().pages_allocated, 1);
    }

    #[test]
    fn cas_success_and_failure() {
        let s = ShadowMemory::new(4096);
        assert!(s
            .compare_exchange(10, Epoch::ZERO, Epoch::from_raw(1))
            .is_ok());
        let err = s
            .compare_exchange(10, Epoch::ZERO, Epoch::from_raw(2))
            .unwrap_err();
        assert_eq!(err, Epoch::from_raw(1));
        assert_eq!(s.load(10), Epoch::from_raw(1));
    }

    #[test]
    fn reset_is_logical_zeroing() {
        let s = ShadowMemory::new(4096 * 3);
        s.store(0, Epoch::from_raw(9));
        s.store(9000, Epoch::from_raw(11));
        s.reset();
        assert_eq!(s.load(0), Epoch::ZERO);
        assert_eq!(s.load(9000), Epoch::ZERO);
        assert_eq!(s.stats().resets, 1);
        // Writing after a reset works on the freshened page.
        s.store(0, Epoch::from_raw(3));
        assert_eq!(s.load(0), Epoch::from_raw(3));
        assert_eq!(s.load(1), Epoch::ZERO);
    }

    #[test]
    fn cas_after_reset_sees_zero() {
        let s = ShadowMemory::new(4096);
        s.store(7, Epoch::from_raw(5));
        s.reset();
        // The old value is logically gone; CAS against ZERO must succeed.
        assert!(s
            .compare_exchange(7, Epoch::ZERO, Epoch::from_raw(6))
            .is_ok());
        assert_eq!(s.load(7), Epoch::from_raw(6));
    }

    #[test]
    fn range_uniform_detects_mixed_epochs() {
        let s = ShadowMemory::new(4096);
        for i in 0..8 {
            s.store(100 + i, Epoch::from_raw(4));
        }
        assert_eq!(s.range_uniform(100, 8), Some(Epoch::from_raw(4)));
        s.store(103, Epoch::from_raw(5));
        assert_eq!(s.range_uniform(100, 8), None);
        assert_eq!(s.range_uniform(104, 4), Some(Epoch::from_raw(4)));
    }

    #[test]
    fn load_range_copies() {
        let s = ShadowMemory::new(4096);
        s.store(0, Epoch::from_raw(1));
        s.store(2, Epoch::from_raw(3));
        let mut buf = [Epoch::ZERO; 4];
        s.load_range(0, 4, &mut buf);
        assert_eq!(buf[0], Epoch::from_raw(1));
        assert_eq!(buf[1], Epoch::ZERO);
        assert_eq!(buf[2], Epoch::from_raw(3));
    }

    #[test]
    fn spans_page_boundary() {
        let s = ShadowMemory::new(PAGE_EPOCHS * 2);
        let base = PAGE_EPOCHS - 2;
        for i in 0..4 {
            s.store(base + i, Epoch::from_raw(7));
        }
        assert_eq!(s.range_uniform(base, 4), Some(Epoch::from_raw(7)));
        assert_eq!(s.stats().pages_allocated, 2);
    }

    #[test]
    #[should_panic]
    fn rejects_zero_size() {
        let _ = ShadowMemory::new(0);
    }

    #[test]
    fn concurrent_cas_publishes_exactly_one() {
        let s = Arc::new(ShadowMemory::new(4096));
        let mut handles = Vec::new();
        for t in 1..=8u32 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                s.compare_exchange(0, Epoch::ZERO, Epoch::from_raw(t))
                    .is_ok()
            }));
        }
        let wins = handles
            .into_iter()
            .map(|h| h.join().unwrap())
            .filter(|ok| *ok)
            .count();
        assert_eq!(wins, 1, "exactly one CAS may publish");
    }

    #[test]
    fn range_uniform_on_unmaterialized_page_is_zero() {
        let s = ShadowMemory::new(PAGE_EPOCHS * 2);
        assert_eq!(s.range_uniform(100, 8), Some(Epoch::ZERO));
        assert_eq!(s.stats().pages_allocated, 0, "no allocation on reads");
    }

    #[test]
    fn range_uniform_after_reset_is_zero() {
        let s = ShadowMemory::new(4096);
        for i in 0..8 {
            s.store(64 + i, Epoch::from_raw(9));
        }
        s.reset();
        assert_eq!(s.range_uniform(64, 8), Some(Epoch::ZERO));
    }

    #[test]
    fn cas_range_single_page() {
        let s = ShadowMemory::new(4096);
        s.compare_exchange_range(16, 8, Epoch::ZERO, Epoch::from_raw(5))
            .unwrap();
        assert_eq!(s.range_uniform(16, 8), Some(Epoch::from_raw(5)));
        // Mismatch reports the offending address.
        s.store(19, Epoch::from_raw(7));
        let (at, found) = s
            .compare_exchange_range(16, 8, Epoch::from_raw(5), Epoch::from_raw(6))
            .unwrap_err();
        assert_eq!(at, 19);
        assert_eq!(found, Epoch::from_raw(7));
        // Bytes before the conflict were updated (wide-CAS sequence).
        assert_eq!(s.load(16), Epoch::from_raw(6));
        assert_eq!(s.load(18), Epoch::from_raw(6));
        assert_eq!(s.load(20), Epoch::from_raw(5));
    }

    #[test]
    fn cas_range_across_pages() {
        let s = ShadowMemory::new(PAGE_EPOCHS * 2);
        let base = PAGE_EPOCHS - 3;
        s.compare_exchange_range(base, 6, Epoch::ZERO, Epoch::from_raw(4))
            .unwrap();
        assert_eq!(s.range_uniform(base, 6), Some(Epoch::from_raw(4)));
        assert_eq!(s.stats().pages_allocated, 2);
    }

    #[test]
    fn cached_ops_match_uncached() {
        let s = ShadowMemory::new(PAGE_EPOCHS * 2);
        let mut c = ShadowPageCache::new();
        assert_eq!(s.load_cached(10, &mut c), Epoch::ZERO);
        s.compare_exchange_cached(10, Epoch::ZERO, Epoch::from_raw(3), &mut c)
            .unwrap();
        assert_eq!(s.load_cached(10, &mut c), Epoch::from_raw(3));
        assert_eq!(s.load(10), Epoch::from_raw(3));
        s.compare_exchange_range_cached(32, 8, Epoch::ZERO, Epoch::from_raw(3), &mut c)
            .unwrap();
        assert_eq!(
            s.range_uniform_cached(32, 8, &mut c),
            Some(Epoch::from_raw(3))
        );
        assert_eq!(s.range_uniform(32, 8), Some(Epoch::from_raw(3)));
        s.store(35, Epoch::from_raw(9));
        assert_eq!(s.range_uniform_cached(32, 8, &mut c), None);
    }

    #[test]
    fn cache_invalidated_by_reset() {
        let s = ShadowMemory::new(4096);
        let mut c = ShadowPageCache::new();
        s.compare_exchange_cached(7, Epoch::ZERO, Epoch::from_raw(5), &mut c)
            .unwrap();
        s.reset();
        // Stale cached generation must miss and read the logical zero.
        assert_eq!(s.load_cached(7, &mut c), Epoch::ZERO);
        assert!(s
            .compare_exchange_cached(7, Epoch::ZERO, Epoch::from_raw(6), &mut c)
            .is_ok());
        assert_eq!(s.load(7), Epoch::from_raw(6));
    }

    #[test]
    fn cache_never_hits_across_instances() {
        let a = ShadowMemory::new(4096);
        let b = ShadowMemory::new(4096);
        let mut c = ShadowPageCache::new();
        a.compare_exchange_cached(0, Epoch::ZERO, Epoch::from_raw(8), &mut c)
            .unwrap();
        // Same page index, same generation — different instance: the uid
        // check must force a miss, reading b's (empty) state.
        assert_eq!(b.load_cached(0, &mut c), Epoch::ZERO);
        assert_eq!(a.load(0), Epoch::from_raw(8));
    }

    #[test]
    fn cached_range_ops_cross_page_boundary() {
        let s = ShadowMemory::new(PAGE_EPOCHS * 2);
        let mut c = ShadowPageCache::new();
        let base = PAGE_EPOCHS - 3;
        s.compare_exchange_range_cached(base, 6, Epoch::ZERO, Epoch::from_raw(4), &mut c)
            .unwrap();
        assert_eq!(
            s.range_uniform_cached(base, 6, &mut c),
            Some(Epoch::from_raw(4))
        );
        assert_eq!(s.range_uniform(base, 6), Some(Epoch::from_raw(4)));
        assert_eq!(s.stats().pages_allocated, 2);
    }

    #[test]
    fn batched_uniform_matches_scalar() {
        let s = ShadowMemory::new(PAGE_EPOCHS * 2);
        // Fresh: zero. Uniform span, mixed span, page-straddling span —
        // the batched path must agree with range_uniform on each.
        assert_eq!(s.range_uniform_batched(100, 64), Some(Epoch::ZERO));
        for i in 0..64 {
            s.store(100 + i, Epoch::from_raw(4));
        }
        assert_eq!(s.range_uniform_batched(100, 64), Some(Epoch::from_raw(4)));
        assert_eq!(s.range_uniform_batched(100, 1), Some(Epoch::from_raw(4)));
        // Mismatch in the middle of a chunk and at a chunk boundary.
        s.store(130, Epoch::from_raw(9));
        assert_eq!(s.range_uniform_batched(100, 64), None);
        assert_eq!(s.range_uniform(100, 64), None);
        assert_eq!(s.range_uniform_batched(100, 30), Some(Epoch::from_raw(4)));
        // Cross-page spans fall back to the scalar walk.
        let base = PAGE_EPOCHS - 3;
        for i in 0..6 {
            s.store(base + i, Epoch::from_raw(7));
        }
        assert_eq!(s.range_uniform_batched(base, 6), Some(Epoch::from_raw(7)));
    }

    #[test]
    fn batched_uniform_cached_matches_and_respects_reset() {
        let s = ShadowMemory::new(4096);
        let mut c = ShadowPageCache::new();
        for i in 0..16 {
            s.store(64 + i, Epoch::from_raw(3));
        }
        assert_eq!(
            s.range_uniform_batched_cached(64, 16, &mut c),
            Some(Epoch::from_raw(3))
        );
        // Cache now primed; a hit must still see fresh element values.
        s.store(70, Epoch::from_raw(5));
        assert_eq!(s.range_uniform_batched_cached(64, 16, &mut c), None);
        s.reset();
        assert_eq!(
            s.range_uniform_batched_cached(64, 16, &mut c),
            Some(Epoch::ZERO)
        );
    }

    #[test]
    fn generation_visible() {
        let s = ShadowMemory::new(4096);
        assert_eq!(s.generation(), 0);
        s.reset();
        s.reset();
        assert_eq!(s.generation(), 2);
        assert!(!format!("{s:?}").is_empty());
    }
}
