//! Vector clocks with epoch-valued elements (Sections 2.3 and 4.1).
//!
//! CLEAN maintains one vector clock per running thread and per lock. As the
//! Section 4.1 optimization prescribes, each element stores not a bare
//! scalar clock but a full epoch — the element's thread id in the high bits
//! and its scalar clock in the low bits. The redundant id bits allow the
//! race check of Figure 2 to compare a location's saved epoch directly
//! against the corresponding vector-clock element with a single integer
//! comparison.

use crate::epoch::{Epoch, EpochLayout, ThreadId};
use core::fmt;

/// Error returned when incrementing a vector-clock element would overflow
/// the clock representation and a deterministic metadata reset is required
/// first (Section 4.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockRolloverError {
    /// The thread whose scalar clock reached the representable maximum.
    pub tid: ThreadId,
}

impl fmt::Display for ClockRolloverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "scalar clock of {} rolled over", self.tid)
    }
}

impl std::error::Error for ClockRolloverError {}

/// A vector clock whose elements are epochs (Section 4.1).
///
/// Element `i` always has thread id `i` in its high bits, so ordering two
/// elements of the same index as raw integers orders their scalar clocks.
///
/// # Examples
///
/// ```
/// use clean_core::{EpochLayout, ThreadId, VectorClock};
/// let layout = EpochLayout::default();
/// let mut vc = VectorClock::new(4, layout);
/// vc.increment(ThreadId::new(1)).unwrap();
/// assert_eq!(vc.clock_of(ThreadId::new(1)), 1);
/// assert_eq!(vc.clock_of(ThreadId::new(0)), 0);
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct VectorClock {
    layout: EpochLayout,
    /// Raw epoch-valued elements, indexed by thread id.
    elems: Vec<u32>,
}

impl VectorClock {
    /// Creates a zeroed vector clock for `num_threads` threads.
    ///
    /// # Panics
    ///
    /// Panics if `num_threads` exceeds the layout's thread capacity.
    pub fn new(num_threads: usize, layout: EpochLayout) -> Self {
        assert!(
            num_threads <= layout.max_threads(),
            "{num_threads} threads exceed layout capacity {}",
            layout.max_threads()
        );
        let elems = (0..num_threads)
            .map(|i| layout.pack(ThreadId::new(i as u16), 0).raw())
            .collect();
        VectorClock { layout, elems }
    }

    /// The layout used to pack elements.
    pub fn layout(&self) -> EpochLayout {
        self.layout
    }

    /// Number of thread slots tracked.
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// Returns true if the clock tracks no threads.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// Returns the epoch-valued element for `tid`.
    #[inline]
    pub fn element(&self, tid: ThreadId) -> Epoch {
        Epoch::from_raw(self.elems[tid.index()])
    }

    /// Returns the scalar clock of `tid`'s element.
    #[inline]
    pub fn clock_of(&self, tid: ThreadId) -> u32 {
        self.layout.clock(self.element(tid))
    }

    /// Raw view of the elements, indexed by thread id.
    pub fn as_raw(&self) -> &[u32] {
        &self.elems
    }

    /// Increments the element for `tid` ("main element" when `tid` is the
    /// owning thread).
    ///
    /// # Errors
    ///
    /// Returns [`ClockRolloverError`] if the element already holds the
    /// maximum representable clock; the caller must trigger a deterministic
    /// metadata reset (Section 4.5) and retry.
    pub fn increment(&mut self, tid: ThreadId) -> Result<(), ClockRolloverError> {
        let cur = self.clock_of(tid);
        if self.layout.at_rollover(cur) {
            return Err(ClockRolloverError { tid });
        }
        self.elems[tid.index()] = self.layout.pack(tid, cur + 1).raw();
        Ok(())
    }

    /// Returns true if incrementing `tid`'s element would roll over.
    pub fn at_rollover(&self, tid: ThreadId) -> bool {
        self.layout.at_rollover(self.clock_of(tid))
    }

    /// Element-wise maximum: `self := self ⊔ other`.
    ///
    /// This is the join performed on lock acquire and thread join.
    ///
    /// # Panics
    ///
    /// Panics if the two clocks track different numbers of threads or use
    /// different layouts.
    pub fn join(&mut self, other: &VectorClock) {
        assert_eq!(self.layout, other.layout, "layout mismatch in join");
        assert_eq!(
            self.elems.len(),
            other.elems.len(),
            "length mismatch in join"
        );
        for (a, b) in self.elems.iter_mut().zip(other.elems.iter()) {
            // Same index ⇒ same tid bits, so raw comparison orders clocks.
            if *b > *a {
                *a = *b;
            }
        }
    }

    /// Returns true if `self` happens-before-or-equals `other`, i.e. every
    /// element of `self` is ≤ its counterpart in `other`.
    pub fn le(&self, other: &VectorClock) -> bool {
        assert_eq!(self.elems.len(), other.elems.len(), "length mismatch in le");
        self.elems
            .iter()
            .zip(other.elems.iter())
            .all(|(a, b)| a <= b)
    }

    /// Sets the element for `tid` to exactly `clock`.
    ///
    /// Used when a thread id is reused after join (Section 4.5): the new
    /// thread's own element resumes from the previous occupant's final
    /// clock so its epochs are never confused with the dead thread's.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `clock` exceeds the layout's maximum.
    pub fn set_clock(&mut self, tid: ThreadId, clock: u32) {
        self.elems[tid.index()] = self.layout.pack(tid, clock).raw();
    }

    /// Resets every element's scalar clock to zero (deterministic metadata
    /// reset, Section 4.5).
    pub fn reset(&mut self) {
        for (i, e) in self.elems.iter_mut().enumerate() {
            *e = self.layout.pack(ThreadId::new(i as u16), 0).raw();
        }
    }

    /// Returns the epoch a write by `tid` would publish right now: the
    /// thread's main element (Figure 2, line 4).
    #[inline]
    pub fn write_epoch(&self, tid: ThreadId) -> Epoch {
        self.element(tid)
    }

    /// Performs the Figure 2 line-3 check: does a previously saved epoch
    /// race with this (the accessing thread's) vector clock?
    ///
    /// Returns `true` when `CLOCK(epoch) > vc[TID(epoch)]`, i.e. the saved
    /// write does *not* happen-before the current access — a WAW or RAW
    /// race depending on the access kind.
    #[inline]
    pub fn races_with(&self, epoch: Epoch) -> bool {
        // Section 4.1: tid bits are embedded in elements, so the raw
        // comparison `epoch > elems[tid]` is exactly the clock comparison.
        let e = epoch.without_expanded();
        let idx = self.layout.tid(e).index();
        debug_assert!(idx < self.elems.len(), "epoch tid out of range");
        e.raw() > self.elems[idx]
    }
}

impl fmt::Debug for VectorClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VC[")?;
        for (i, _) in self.elems.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", self.clock_of(ThreadId::new(i as u16)))?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vc(n: usize) -> VectorClock {
        VectorClock::new(n, EpochLayout::paper_default())
    }

    #[test]
    fn new_clock_is_all_zero() {
        let c = vc(4);
        for i in 0..4 {
            assert_eq!(c.clock_of(ThreadId::new(i)), 0);
        }
        assert_eq!(c.len(), 4);
        assert!(!c.is_empty());
    }

    #[test]
    fn increment_bumps_only_target() {
        let mut c = vc(3);
        c.increment(ThreadId::new(1)).unwrap();
        c.increment(ThreadId::new(1)).unwrap();
        assert_eq!(c.clock_of(ThreadId::new(0)), 0);
        assert_eq!(c.clock_of(ThreadId::new(1)), 2);
        assert_eq!(c.clock_of(ThreadId::new(2)), 0);
    }

    #[test]
    fn join_takes_elementwise_max() {
        let mut a = vc(3);
        let mut b = vc(3);
        a.increment(ThreadId::new(0)).unwrap();
        b.increment(ThreadId::new(1)).unwrap();
        b.increment(ThreadId::new(1)).unwrap();
        a.join(&b);
        assert_eq!(a.clock_of(ThreadId::new(0)), 1);
        assert_eq!(a.clock_of(ThreadId::new(1)), 2);
        assert_eq!(a.clock_of(ThreadId::new(2)), 0);
    }

    #[test]
    fn le_is_pointwise() {
        let mut a = vc(2);
        let mut b = vc(2);
        assert!(a.le(&b) && b.le(&a));
        b.increment(ThreadId::new(0)).unwrap();
        assert!(a.le(&b));
        assert!(!b.le(&a));
        a.increment(ThreadId::new(1)).unwrap();
        assert!(!a.le(&b));
        assert!(!b.le(&a));
    }

    #[test]
    fn races_with_detects_unordered_write() {
        let mut writer = vc(2);
        writer.increment(ThreadId::new(0)).unwrap(); // clock 1
        let epoch = writer.write_epoch(ThreadId::new(0));

        // A reader that never synchronized with the writer.
        let reader = vc(2);
        assert!(reader.races_with(epoch));

        // After acquiring the writer's clock, no race.
        let mut synced = vc(2);
        synced.join(&writer);
        assert!(!synced.races_with(epoch));
    }

    #[test]
    fn races_with_ignores_expanded_bit() {
        let layout = EpochLayout::paper_default();
        let mut writer = vc(2);
        writer.increment(ThreadId::new(1)).unwrap();
        let e = layout.pack(ThreadId::new(1), 1).with_expanded();
        let mut synced = vc(2);
        synced.join(&writer);
        assert!(!synced.races_with(e));
        let unsynced = vc(2);
        assert!(unsynced.races_with(e));
    }

    #[test]
    fn zero_epoch_never_races() {
        let c = vc(4);
        assert!(!c.races_with(Epoch::ZERO));
    }

    #[test]
    fn rollover_error_at_max_clock() {
        let layout = EpochLayout::with_clock_bits(2); // max clock 3
        let mut c = VectorClock::new(2, layout);
        let t = ThreadId::new(0);
        for _ in 0..3 {
            c.increment(t).unwrap();
        }
        assert!(c.at_rollover(t));
        let err = c.increment(t).unwrap_err();
        assert_eq!(err.tid, t);
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn reset_zeroes_clocks() {
        let mut c = vc(3);
        c.increment(ThreadId::new(2)).unwrap();
        c.reset();
        for i in 0..3 {
            assert_eq!(c.clock_of(ThreadId::new(i)), 0);
        }
    }

    #[test]
    #[should_panic]
    fn join_rejects_length_mismatch() {
        let mut a = vc(2);
        let b = vc(3);
        a.join(&b);
    }

    #[test]
    fn debug_is_nonempty() {
        assert!(!format!("{:?}", vc(2)).is_empty());
    }
}
