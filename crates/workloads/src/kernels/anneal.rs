//! Element-swapping annealer — the structure of canneal. The race-free
//! version acquires the two element locks in index order before swapping;
//! the "unmodified" version swaps with **no locks at all**, modelling
//! canneal's lock-free synchronization strategy whose races the paper
//! found too numerous to remove (Section 6.1).

use super::{compute, mix, racy_probe, KernelRng};
use crate::params::KernelParams;
use clean_runtime::{CleanRuntime, Result};

const LOCKS: usize = 16;

pub(crate) fn run(rt: &CleanRuntime, p: &KernelParams) -> Result<u64> {
    let elements = 64 * p.scale.factor();
    let swaps = 30 * p.scale.factor();
    let threads = p.threads;
    let cells = rt.alloc_array::<u32>(elements)?;
    let probe = rt.alloc_array::<u32>(2)?;
    let locks: Vec<_> = (0..LOCKS).map(|_| rt.create_mutex()).collect();
    let cpa = p.compute_per_access;
    let params = *p;

    rt.run(|ctx| {
        for i in 0..elements {
            ctx.write(&cells, i, i as u32)?;
        }
        let mut kids = Vec::new();
        for t in 0..threads {
            let locks = locks.clone();
            kids.push(ctx.spawn(move |c| {
                racy_probe(c, &probe, &params, t)?;
                let mut rng = KernelRng::new(params.seed ^ ((t as u64) << 24) | 1);
                for _ in 0..swaps {
                    let i = rng.below(elements as u64) as usize;
                    let mut j = rng.below(elements as u64) as usize;
                    if i == j {
                        j = (j + 1) % elements;
                    }
                    compute(c, cpa);
                    if params.racy {
                        // canneal's lock-free strategy: racy swap.
                        let a = c.read(&cells, i)?;
                        let b = c.read(&cells, j)?;
                        c.write(&cells, i, b)?;
                        c.write(&cells, j, a)?;
                    } else {
                        // Ordered two-lock acquisition prevents deadlock.
                        let (lo, hi) = (i.min(j), i.max(j));
                        c.lock(&locks[lo % LOCKS])?;
                        if hi % LOCKS != lo % LOCKS {
                            c.lock(&locks[hi % LOCKS])?;
                        }
                        let a = c.read(&cells, i)?;
                        let b = c.read(&cells, j)?;
                        c.write(&cells, i, b)?;
                        c.write(&cells, j, a)?;
                        if hi % LOCKS != lo % LOCKS {
                            c.unlock(&locks[hi % LOCKS])?;
                        }
                        c.unlock(&locks[lo % LOCKS])?;
                    }
                }
                Ok(())
            })?);
        }
        for k in kids {
            ctx.join(k)??;
        }
        let mut out = 0u64;
        let mut sum = 0u64;
        for i in 0..elements {
            let v = ctx.read(&cells, i)?;
            sum += u64::from(v);
            out = mix(out, u64::from(v));
        }
        // Swaps permute: the multiset of values is invariant.
        assert_eq!(sum, (elements as u64 * (elements as u64 - 1)) / 2);
        Ok(out)
    })
}
