//! Parallel radix sort — the structure of radix: per-digit passes of
//! (i) per-thread histogramming of an owned key slice, (ii) a root prefix
//! sum assigning each thread disjoint output ranges, (iii) a scatter into
//! those ranges. Barriers separate the phases; the scatter's all-to-all
//! permutation is what gives radix its LLC pressure in the paper.

use super::{compute, mix, racy_probe, KernelRng};
use crate::params::KernelParams;
use clean_runtime::{CleanRuntime, Result};

const RADIX: usize = 16; // 4-bit digits
const PASSES: usize = 2;

pub(crate) fn run(rt: &CleanRuntime, p: &KernelParams) -> Result<u64> {
    let n = 200 * p.scale.factor();
    let threads = p.threads.min(n);
    let keys = rt.alloc_array::<u32>(n)?;
    let temp = rt.alloc_array::<u32>(n)?;
    // hist[thread][digit]; offsets[thread][digit].
    let hist = rt.alloc_array::<u32>(threads * RADIX)?;
    let offsets = rt.alloc_array::<u32>(threads * RADIX)?;
    let probe = rt.alloc_array::<u32>(2)?;
    let barrier = rt.create_barrier(threads + 1);
    let cpa = p.compute_per_access;
    let params = *p;

    rt.run(|ctx| {
        let mut rng = KernelRng::new(params.seed);
        for i in 0..n {
            ctx.write(&keys, i, (rng.next_u64() & 0xff) as u32)?;
        }
        let per = n.div_ceil(threads);
        let mut kids = Vec::new();
        for t in 0..threads {
            let barrier = barrier.clone();
            kids.push(ctx.spawn(move |c| {
                racy_probe(c, &probe, &params, t)?;
                let lo = t * per;
                let hi = ((t + 1) * per).min(n);
                for pass in 0..PASSES {
                    let shift = pass * 4;
                    let (src, dst) = if pass % 2 == 0 {
                        (keys, temp)
                    } else {
                        (temp, keys)
                    };
                    // Histogram own slice into own counters.
                    for d in 0..RADIX {
                        c.write(&hist, t * RADIX + d, 0u32)?;
                    }
                    for i in lo..hi {
                        let k = c.read(&src, i)?;
                        let d = ((k >> shift) as usize) % RADIX;
                        let v = c.read(&hist, t * RADIX + d)?;
                        c.write(&hist, t * RADIX + d, v + 1)?;
                        compute(c, cpa);
                    }
                    c.barrier_wait(&barrier)?; // root prefix-sums
                    c.barrier_wait(&barrier)?; // offsets published
                                               // Scatter into the disjoint ranges the root assigned.
                    let mut cursor = [0u32; RADIX];
                    for (d, cur) in cursor.iter_mut().enumerate() {
                        *cur = c.read(&offsets, t * RADIX + d)?;
                    }
                    for i in lo..hi {
                        let k = c.read(&src, i)?;
                        let d = ((k >> shift) as usize) % RADIX;
                        c.write(&dst, cursor[d] as usize, k)?;
                        cursor[d] += 1;
                    }
                    c.barrier_wait(&barrier)?; // pass complete
                }
                Ok(())
            })?);
        }
        // Root: prefix sums between the barriers of each pass.
        for _ in 0..PASSES {
            ctx.barrier_wait(&barrier)?;
            let mut running = 0u32;
            for d in 0..RADIX {
                for t in 0..threads {
                    ctx.write(&offsets, t * RADIX + d, running)?;
                    running += ctx.read(&hist, t * RADIX + d)?;
                }
            }
            debug_assert_eq!(running as usize, n);
            ctx.barrier_wait(&barrier)?;
            ctx.barrier_wait(&barrier)?;
        }
        for k in kids {
            ctx.join(k)??;
        }
        // PASSES is even, so the sorted data is back in `keys`.
        let mut out = 0u64;
        let mut prev = 0u32;
        for i in 0..n {
            let k = ctx.read(&keys, i)?;
            assert!(k >= prev, "output must be sorted");
            prev = k;
            out = mix(out, u64::from(k));
        }
        Ok(out)
    })
}
