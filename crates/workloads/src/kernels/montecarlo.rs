//! Embarrassingly parallel Monte Carlo pricing — the structure of
//! blackscholes and swaptions: threads price disjoint option slices with
//! heavy private computation and only write their own output cells, plus
//! one final lock-protected reduction. Shared-access frequency is the
//! lowest of all families (the right-hand tail of Figure 7).

use super::{compute, mix, racy_probe, KernelRng};
use crate::params::KernelParams;
use clean_runtime::{CleanRuntime, Result};

pub(crate) fn run(rt: &CleanRuntime, p: &KernelParams) -> Result<u64> {
    let options = 16 * p.scale.factor();
    let paths = 20;
    let threads = p.threads.min(options);
    let inputs = rt.alloc_array::<f64>(options * 2)?;
    let prices = rt.alloc_array::<f64>(options)?;
    let total = rt.alloc_array::<f64>(1)?;
    let probe = rt.alloc_array::<u32>(2)?;
    // Instrumented per-thread private scratch (the profile's private/stack
    // fraction): worker t only ever touches its own span, so a derived
    // check plan can prove these checks elidable.
    let cells = p.private_cells;
    let scratch = rt.alloc_array::<f64>((threads * cells).max(1))?;
    let rlock = rt.create_mutex();
    let cpa = p.compute_per_access;
    let params = *p;

    rt.run(|ctx| {
        let mut rng = KernelRng::new(params.seed);
        for i in 0..options {
            ctx.write(&inputs, i * 2, (rng.below(200) as f64) / 2.0 + 50.0)?;
            ctx.write(&inputs, i * 2 + 1, (rng.below(100) as f64) / 200.0 + 0.05)?;
        }
        ctx.write(&total, 0, 0.0f64)?;
        let per = options.div_ceil(threads);
        let mut kids = Vec::new();
        for t in 0..threads {
            let rlock = rlock.clone();
            kids.push(ctx.spawn(move |c| {
                racy_probe(c, &probe, &params, t)?;
                let lo = t * per;
                let hi = ((t + 1) * per).min(options);
                let mut local_sum = 0.0f64;
                let scratch_lo = t * cells;
                for i in 0..cells {
                    c.write(&scratch, scratch_lo + i, (t * cells + i) as f64)?;
                }
                for i in 0..cells {
                    local_sum += c.read(&scratch, scratch_lo + i)? * 1e-12;
                }
                let mut rng = KernelRng::new(params.seed ^ (t as u64) << 32);
                for i in lo..hi {
                    let spot = c.read(&inputs, i * 2)?;
                    let vol = c.read(&inputs, i * 2 + 1)?;
                    let mut acc = 0.0f64;
                    for _ in 0..paths {
                        // Private path simulation: lots of uninstrumented
                        // local work per shared access.
                        let z = (rng.below(2001) as f64 - 1000.0) / 1000.0;
                        acc += (spot * (1.0 + vol * z)).max(0.0);
                        compute(c, cpa * 4);
                    }
                    let price = acc / paths as f64;
                    c.write(&prices, i, price)?;
                    local_sum += price;
                }
                c.lock(&rlock)?;
                let s = c.read(&total, 0)?;
                c.write(&total, 0, s + local_sum)?;
                c.unlock(&rlock)?;
                Ok(())
            })?);
        }
        for k in kids {
            ctx.join(k)??;
        }
        let mut out = ctx.read(&total, 0)?.to_bits();
        for i in (0..options).step_by(3) {
            out = mix(out, ctx.read(&prices, i)?.to_bits());
        }
        Ok(out)
    })
}
