//! Bounded-queue software pipeline — the structure of dedup, ferret, vips
//! and x264: a producer stage chunks a byte stream, worker stages
//! transform chunks **byte by byte** (dedup "operates on a single byte
//! granularity", which is what drives its expanded-line metadata in
//! Figure 10), and a consumer stage folds the output into a hash. Stages
//! communicate through mutex+condvar bounded queues, and the thread
//! imbalance inherent to pipelines is what makes deterministic counters
//! imprecise for these codes (Section 6.2.3).

use super::{mix, racy_probe};
use crate::params::KernelParams;
use clean_runtime::{
    CleanBarrier, CleanCondvar, CleanMutex, CleanRuntime, Result, SharedArray, ThreadCtx,
};
use std::sync::Arc;

const QUEUE_CAP: u32 = 4;
const CHUNK: usize = 32;

/// A bounded queue of chunk indices: [head, tail] counters plus a ring of
/// chunk ids, all in shared memory, protected by one mutex + condvar.
#[derive(Clone)]
struct Queue {
    state: SharedArray<u32>, // [head, tail]
    ring: SharedArray<u32>,
    lock: Arc<CleanMutex>,
    cv: Arc<CleanCondvar>,
}

impl Queue {
    fn new(rt: &CleanRuntime) -> Result<Self> {
        Ok(Queue {
            state: rt.alloc_array(2)?,
            ring: rt.alloc_array(QUEUE_CAP as usize)?,
            lock: rt.create_mutex(),
            cv: rt.create_condvar(),
        })
    }

    fn push(&self, c: &mut ThreadCtx, item: u32) -> Result<()> {
        c.lock(&self.lock)?;
        while c.read(&self.state, 1)? - c.read(&self.state, 0)? == QUEUE_CAP {
            c.cond_wait(&self.cv, &self.lock)?;
        }
        let tail = c.read(&self.state, 1)?;
        c.write(&self.ring, (tail % QUEUE_CAP) as usize, item)?;
        c.write(&self.state, 1, tail + 1)?;
        c.cond_broadcast(&self.cv)?;
        c.unlock(&self.lock)?;
        Ok(())
    }

    fn pop(&self, c: &mut ThreadCtx) -> Result<u32> {
        c.lock(&self.lock)?;
        while c.read(&self.state, 0)? == c.read(&self.state, 1)? {
            c.cond_wait(&self.cv, &self.lock)?;
        }
        let head = c.read(&self.state, 0)?;
        let item = c.read(&self.ring, (head % QUEUE_CAP) as usize)?;
        c.write(&self.state, 0, head + 1)?;
        c.cond_broadcast(&self.cv)?;
        c.unlock(&self.lock)?;
        Ok(item)
    }
}

pub(crate) fn run(rt: &CleanRuntime, p: &KernelParams) -> Result<u64> {
    let chunks = 8 * p.scale.factor();
    let workers = p.threads.saturating_sub(2).max(1);
    let input = rt.alloc_array::<u8>(chunks * CHUNK)?;
    let output = rt.alloc_array::<u8>(chunks * CHUNK)?;
    let probe = rt.alloc_array::<u32>(2)?;
    let work_q = Queue::new(rt)?;
    let done_q = Queue::new(rt)?;
    // Participants: producer + workers + consumer + the root thread.
    let start = rt.create_barrier(workers + 3);
    let params = *p;
    let seed = p.seed;

    rt.run(|ctx| {
        const STOP: u32 = u32::MAX;
        let mut kids = Vec::new();
        // Producer: fill chunks byte by byte and enqueue them.
        {
            let (q, start): (Queue, Arc<CleanBarrier>) = (work_q.clone(), start.clone());
            kids.push(ctx.spawn(move |c| {
                racy_probe(c, &probe, &params, 0)?;
                c.barrier_wait(&start)?;
                for chunk in 0..chunks {
                    for b in 0..CHUNK {
                        let v = ((chunk * CHUNK + b) as u64 ^ seed) as u8;
                        c.write(&input, chunk * CHUNK + b, v)?;
                    }
                    q.push(c, chunk as u32)?;
                }
                for _ in 0..workers {
                    q.push(c, STOP)?;
                }
                Ok(0u64)
            })?);
        }
        // Workers: byte-granular transform of each chunk.
        for w in 0..workers {
            let (wq, dq, start) = (work_q.clone(), done_q.clone(), start.clone());
            kids.push(ctx.spawn(move |c| {
                racy_probe(c, &probe, &params, w + 1)?;
                c.barrier_wait(&start)?;
                let mut handled = 0u64;
                loop {
                    let chunk = wq.pop(c)?;
                    if chunk == STOP {
                        dq.push(c, STOP)?;
                        break;
                    }
                    let base = chunk as usize * CHUNK;
                    let mut prev = 0u8;
                    for b in 0..CHUNK {
                        let v = c.read(&input, base + b)?;
                        let t = v.wrapping_add(prev).rotate_left(3);
                        // Single-byte stores: the dedup pattern that forces
                        // expanded metadata lines in hardware CLEAN.
                        c.write(&output, base + b, t)?;
                        prev = t;
                    }
                    dq.push(c, chunk)?;
                    handled += 1;
                }
                Ok(handled)
            })?);
        }
        // Consumer: fold finished chunks.
        let consumer = {
            let (dq, start) = (done_q.clone(), start.clone());
            ctx.spawn(move |c| {
                c.barrier_wait(&start)?;
                let mut stops = 0;
                let mut h = 0u64;
                let mut seen = 0u64;
                while stops < workers {
                    let chunk = dq.pop(c)?;
                    if chunk == STOP {
                        stops += 1;
                        continue;
                    }
                    let base = chunk as usize * CHUNK;
                    let mut ch = 0u64;
                    for b in 0..CHUNK {
                        ch = mix(ch, u64::from(c.read(&output, base + b)?));
                    }
                    // Fold order-independently: completion order varies
                    // without deterministic synchronization.
                    h ^= mix(u64::from(chunk), ch);
                    seen += 1;
                }
                Ok(mix(h, seen))
            })?
        };
        ctx.barrier_wait(&start)?;
        let mut total_handled = 0u64;
        let mut iter = kids.into_iter();
        let producer = iter.next().expect("producer present");
        ctx.join(producer)??;
        for k in iter {
            total_handled += ctx.join(k)??;
        }
        let h = ctx.join(consumer)??;
        assert_eq!(total_handled, chunks as u64);
        Ok(h)
    })
}
