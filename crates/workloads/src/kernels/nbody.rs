//! N-body force computation — the structure of barnes and fmm: every
//! iteration all threads read all body positions (produced last iteration
//! behind a barrier), compute forces for their own partition, integrate
//! their own bodies, and meet at a barrier. A lock-protected global
//! energy accumulator models the tree/cell locks of the originals, giving
//! these benchmarks their high synchronization rate (Table 1 lists barnes
//! and fmm among the rollover-prone, sync-heavy codes).

use super::{compute, mix, racy_probe, sync_work};
use crate::params::KernelParams;
use clean_runtime::{CleanRuntime, Result};

pub(crate) fn run(rt: &CleanRuntime, p: &KernelParams) -> Result<u64> {
    let bodies = 32 + 12 * p.scale.factor();
    let iters = 1 + p.scale.factor();
    let threads = p.threads.min(bodies);
    let pos = rt.alloc_array::<f64>(bodies * 2)?;
    let vel = rt.alloc_array::<f64>(bodies * 2)?;
    let energy = rt.alloc_array::<f64>(1)?;
    let probe = rt.alloc_array::<u32>(2)?;
    let counter = rt.alloc_array::<u32>(1)?;
    let barrier = rt.create_barrier(threads);
    let elock = rt.create_mutex();
    let slock = rt.create_mutex();
    let cpa = p.compute_per_access;
    let seed = p.seed;
    let params = *p;

    rt.run(|ctx| {
        for i in 0..bodies {
            let r = (i as u64).wrapping_mul(seed | 3);
            ctx.write(&pos, i * 2, ((r % 1000) as f64) / 100.0)?;
            ctx.write(&pos, i * 2 + 1, (((r >> 10) % 1000) as f64) / 100.0)?;
            ctx.write(&vel, i * 2, 0.0f64)?;
            ctx.write(&vel, i * 2 + 1, 0.0f64)?;
        }
        ctx.write(&energy, 0, 0.0f64)?;
        let per = bodies.div_ceil(threads);
        let mut kids = Vec::new();
        for t in 0..threads {
            let (barrier, elock) = (barrier.clone(), elock.clone());
            let slock = slock.clone();
            kids.push(ctx.spawn(move |c| {
                racy_probe(c, &probe, &params, t)?;
                let lo = t * per;
                let hi = ((t + 1) * per).min(bodies);
                for _ in 0..iters {
                    let mut local_e = 0.0f64;
                    for i in lo..hi {
                        sync_work(c, &slock, &counter, params.sync_boost)?;
                        let (xi, yi) = (c.read(&pos, i * 2)?, c.read(&pos, i * 2 + 1)?);
                        let mut fx = 0.0;
                        let mut fy = 0.0;
                        for j in 0..bodies {
                            if j == i {
                                continue;
                            }
                            let dx = c.read(&pos, j * 2)? - xi;
                            let dy = c.read(&pos, j * 2 + 1)? - yi;
                            let d2 = dx * dx + dy * dy + 0.1;
                            fx += dx / d2;
                            fy += dy / d2;
                        }
                        local_e += fx * fx + fy * fy;
                        let (vx, vy) = (c.read(&vel, i * 2)?, c.read(&vel, i * 2 + 1)?);
                        c.write(&vel, i * 2, vx + fx * 0.01)?;
                        c.write(&vel, i * 2 + 1, vy + fy * 0.01)?;
                        compute(c, cpa);
                    }
                    // The lock-protected global accumulator (tree locks).
                    c.lock(&elock)?;
                    let e = c.read(&energy, 0)?;
                    c.write(&energy, 0, e + local_e)?;
                    c.unlock(&elock)?;
                    // Wait for all force updates before integrating.
                    c.barrier_wait(&barrier)?;
                    for i in lo..hi {
                        let (x, y) = (c.read(&pos, i * 2)?, c.read(&pos, i * 2 + 1)?);
                        let (vx, vy) = (c.read(&vel, i * 2)?, c.read(&vel, i * 2 + 1)?);
                        c.write(&pos, i * 2, x + vx)?;
                        c.write(&pos, i * 2 + 1, y + vy)?;
                    }
                    c.barrier_wait(&barrier)?;
                }
                Ok(())
            })?);
        }
        for k in kids {
            ctx.join(k)??;
        }
        let mut out = ctx.read(&energy, 0)?.to_bits();
        for i in (0..bodies * 2).step_by(5) {
            out = mix(out, ctx.read(&pos, i)?.to_bits());
        }
        Ok(out)
    })
}
