//! Dynamic task queue — the structure of raytrace, volrend, radiosity and
//! bodytrack: workers repeatedly grab the next task index from a
//! lock-protected counter and render/process it into a private result
//! slot. Task *assignment* is timing-dependent, so without deterministic
//! synchronization different runs assign tasks differently — exactly the
//! class of program Kendo makes repeatable.

use super::{compute, mix, racy_probe, sync_work, KernelRng};
use crate::params::KernelParams;
use clean_runtime::{CleanRuntime, Result};

pub(crate) fn run(rt: &CleanRuntime, p: &KernelParams) -> Result<u64> {
    let tasks = 40 * p.scale.factor();
    let work_per_task = 24;
    let threads = p.threads;
    let input = rt.alloc_array::<u32>(tasks * 4)?;
    let results = rt.alloc_array::<u64>(tasks)?;
    let next = rt.alloc_array::<u32>(1)?;
    let probe = rt.alloc_array::<u32>(2)?;
    let counter = rt.alloc_array::<u32>(1)?;
    let qlock = rt.create_mutex();
    let slock = rt.create_mutex();
    let cpa = p.compute_per_access;
    let params = *p;

    rt.run(|ctx| {
        let mut rng = KernelRng::new(params.seed);
        for i in 0..tasks * 4 {
            ctx.write(&input, i, rng.next_u64() as u32)?;
        }
        ctx.write(&next, 0, 0u32)?;
        let mut kids = Vec::new();
        for t in 0..threads {
            let (qlock, slock) = (qlock.clone(), slock.clone());
            kids.push(ctx.spawn(move |c| {
                racy_probe(c, &probe, &params, t)?;
                let mut processed = 0u64;
                loop {
                    // Grab the next task deterministically (under Kendo).
                    c.lock(&qlock)?;
                    let mine = c.read(&next, 0)?;
                    if (mine as usize) < tasks {
                        c.write(&next, 0, mine + 1)?;
                    }
                    c.unlock(&qlock)?;
                    let mine = mine as usize;
                    if mine >= tasks {
                        break;
                    }
                    // Process: read the descriptor, trace "rays", write the
                    // result slot (owned by this task; readers are ordered
                    // behind the final joins).
                    sync_work(c, &slock, &counter, params.sync_boost)?;
                    let mut acc = 0u64;
                    for k in 0..4 {
                        acc = mix(acc, u64::from(c.read(&input, mine * 4 + k)?));
                    }
                    for r in 0..work_per_task {
                        acc = mix(acc, compute(c, cpa) ^ r as u64);
                    }
                    c.write(&results, mine, acc)?;
                    processed += 1;
                }
                Ok(processed)
            })?);
        }
        let mut total = 0u64;
        for k in kids {
            total += ctx.join(k)??;
        }
        assert_eq!(total, tasks as u64, "every task processed exactly once");
        let mut out = 0u64;
        for i in 0..tasks {
            out = mix(out, ctx.read(&results, i)?);
        }
        Ok(out)
    })
}
