//! Dense linear algebra — the structure of lu_cb/lu_ncb, cholesky and
//! fft: Gaussian elimination where each step's pivot row (produced by its
//! owner) is consumed by all threads updating their own trailing rows,
//! with barriers between steps. The dominant cost is shared loads/stores
//! with very little private compute, which is why the lu codes show the
//! highest shared-access frequency in Figure 7.

use super::{compute, mix, racy_probe};
use crate::params::KernelParams;
use clean_runtime::{CleanRuntime, Result};

pub(crate) fn run(rt: &CleanRuntime, p: &KernelParams) -> Result<u64> {
    let n = 16 + 6 * p.scale.factor(); // matrix side
    let threads = p.threads.min(n);
    let a = rt.alloc_array::<f64>(n * n)?;
    let probe = rt.alloc_array::<u32>(2)?;
    let barrier = rt.create_barrier(threads);
    let cpa = p.compute_per_access;
    let seed = p.seed;
    let params = *p;

    rt.run(|ctx| {
        // Diagonally dominant matrix so elimination is stable.
        for i in 0..n {
            for j in 0..n {
                let v = if i == j {
                    (n as f64) * 2.0
                } else {
                    (((i * 31 + j * 17) as u64 ^ seed) % 97) as f64 / 97.0
                };
                ctx.write(&a, i * n + j, v)?;
            }
        }
        let mut kids = Vec::new();
        for t in 0..threads {
            let barrier = barrier.clone();
            kids.push(ctx.spawn(move |c| {
                racy_probe(c, &probe, &params, t)?;
                c.barrier_wait(&barrier)?; // probe before the first pivot
                for k in 0..n - 1 {
                    // The pivot row's owner scales it.
                    if k % threads == t {
                        let pivot = c.read(&a, k * n + k)?;
                        for j in k + 1..n {
                            let v = c.read(&a, k * n + j)?;
                            c.write(&a, k * n + j, v / pivot)?;
                        }
                    }
                    c.barrier_wait(&barrier)?;
                    // All threads update their own trailing rows. The lu
                    // codes are almost pure shared traffic (cpa 1); the
                    // compute-heavy members of this family (fft butterfly
                    // twiddles, cholesky supernode math) pay per-element
                    // private work too.
                    for i in (k + 1..n).filter(|i| i % threads == t) {
                        let lik = c.read(&a, i * n + k)?;
                        for j in k + 1..n {
                            let akj = c.read(&a, k * n + j)?;
                            let v = c.read(&a, i * n + j)?;
                            c.write(&a, i * n + j, v - lik * akj)?;
                            if cpa >= 8 {
                                compute(c, cpa / 4);
                            }
                        }
                        compute(c, cpa);
                    }
                    c.barrier_wait(&barrier)?;
                }
                Ok(())
            })?);
        }
        for k in kids {
            ctx.join(k)??;
        }
        let mut out = 0u64;
        for i in 0..n {
            out = mix(out, ctx.read(&a, i * n + i)?.to_bits());
        }
        Ok(out)
    })
}
