//! Per-bucket-locked molecular dynamics — the structure of
//! water_nsquared and water_spatial: threads sweep their slice of
//! particle pairs, reading positions (stable within an iteration, behind
//! a barrier) and accumulating pairwise forces into spatial buckets, each
//! protected by its own lock; owners then integrate their particles.

use super::{compute, mix, racy_probe};
use crate::params::KernelParams;
use clean_runtime::{CleanRuntime, Result};

const BUCKETS: usize = 8;

pub(crate) fn run(rt: &CleanRuntime, p: &KernelParams) -> Result<u64> {
    let particles = 24 + 8 * p.scale.factor();
    let iters = 1 + p.scale.factor() / 2;
    let threads = p.threads.min(particles);
    let pos = rt.alloc_array::<f64>(particles)?;
    let force = rt.alloc_array::<f64>(BUCKETS)?;
    let probe = rt.alloc_array::<u32>(2)?;
    let barrier = rt.create_barrier(threads);
    let locks: Vec<_> = (0..BUCKETS).map(|_| rt.create_mutex()).collect();
    let cpa = p.compute_per_access;
    let seed = p.seed;
    let params = *p;

    rt.run(|ctx| {
        for i in 0..particles {
            let r = (i as u64).wrapping_mul(seed | 5) % 997;
            ctx.write(&pos, i, r as f64 / 99.7)?;
        }
        for b in 0..BUCKETS {
            ctx.write(&force, b, 0.0f64)?;
        }
        let per = particles.div_ceil(threads);
        let mut kids = Vec::new();
        for t in 0..threads {
            let barrier = barrier.clone();
            let locks = locks.clone();
            kids.push(ctx.spawn(move |c| {
                racy_probe(c, &probe, &params, t)?;
                let lo = t * per;
                let hi = ((t + 1) * per).min(particles);
                for _ in 0..iters {
                    let mut local = [0.0f64; BUCKETS];
                    for i in lo..hi {
                        let xi = c.read(&pos, i)?;
                        for j in 0..particles {
                            if i == j {
                                continue;
                            }
                            let xj = c.read(&pos, j)?;
                            let d = xi - xj;
                            local[j % BUCKETS] += d / (d * d + 0.5);
                        }
                        compute(c, cpa);
                        // Flush the accumulators under bucket locks every
                        // few particles (the originals batch force updates
                        // per molecule group; water's sync rate is medium,
                        // not Table-1-rollover-heavy).
                        if (i - lo) % 4 == 3 || i + 1 == hi {
                            for (b, v) in local.iter_mut().enumerate() {
                                c.lock(&locks[b])?;
                                let f = c.read(&force, b)?;
                                c.write(&force, b, f + *v)?;
                                c.unlock(&locks[b])?;
                                *v = 0.0;
                            }
                        }
                    }
                    c.barrier_wait(&barrier)?;
                    // Integrate own particles from the bucket forces.
                    for i in lo..hi {
                        let x = c.read(&pos, i)?;
                        let f = c.read(&force, i % BUCKETS)?;
                        c.write(&pos, i, x + f * 1e-4)?;
                    }
                    c.barrier_wait(&barrier)?;
                }
                Ok(())
            })?);
        }
        for k in kids {
            ctx.join(k)??;
        }
        let mut out = 0u64;
        for i in 0..particles {
            out = mix(out, ctx.read(&pos, i)?.to_bits());
        }
        Ok(out)
    })
}
