//! Runnable multithreaded kernels modelling the parallel structure of the
//! SPLASH-2/PARSEC benchmarks, written against the CLEAN runtime API
//! (every shared access goes through the checked accessors — the
//! library-level analogue of the paper's compiler instrumentation).
//!
//! Each family captures one parallelization idiom of the suites:
//! barrier-phased grids (ocean/fluidanimate/facesim), dense linear algebra
//! (lu/cholesky/fft), n-body force computation (barnes/fmm), dynamic task
//! queues (raytrace/volrend/radiosity/bodytrack), per-bucket-locked
//! molecular dynamics (water), embarrassingly parallel Monte Carlo
//! (blackscholes/swaptions), bounded-queue pipelines (dedup/ferret/vips/
//! x264), iterative clustering (streamcluster), radix sort (radix), and
//! lock-free-style annealing (canneal).
//!
//! Every kernel is data-race-free by construction; passing
//! `KernelParams::racy(true)` runs the "unmodified" version, which
//! additionally performs the benchmark's seeded unsynchronized accesses
//! (Section 6.2.2's experiment requires every racy benchmark to end with
//! a race exception).

mod anneal;
mod kmeans;
mod linalg;
mod molecular;
mod montecarlo;
mod nbody;
mod pipeline;
mod sort;
mod stencil;
mod taskqueue;

use crate::params::KernelParams;
use clean_runtime::{CleanRuntime, Result, SharedArray, ThreadCtx};

/// The kernel families used to model the 26 benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelKind {
    /// Barrier-phased grid relaxation (ocean_cp/ncp, fluidanimate, facesim).
    Stencil,
    /// Dense linear algebra: blocked LU elimination (lu_cb/ncb, cholesky, fft).
    LinAlg,
    /// N-body force computation (barnes, fmm).
    NBody,
    /// Dynamic task queue (raytrace, volrend, radiosity, bodytrack,
    /// parsec_raytrace).
    TaskQueue,
    /// Per-bucket-locked molecular dynamics (water_nsquared, water_spatial).
    Molecular,
    /// Embarrassingly parallel Monte Carlo (blackscholes, swaptions).
    MonteCarlo,
    /// Bounded-queue pipeline with byte-granular payloads (dedup, ferret,
    /// vips, x264).
    Pipeline,
    /// Iterative clustering (streamcluster).
    KMeans,
    /// Parallel radix sort (radix).
    Sort,
    /// Lock-ordered (or, racy, lock-free) element swapping (canneal).
    Anneal,
}

/// Runs a kernel on `rt` and returns its deterministic output hash.
///
/// # Errors
///
/// Propagates race exceptions ([`clean_runtime::CleanError::Race`] /
/// `Poisoned`) and allocation failures.
pub fn run_kernel(kind: KernelKind, rt: &CleanRuntime, params: &KernelParams) -> Result<u64> {
    match kind {
        KernelKind::Stencil => stencil::run(rt, params),
        KernelKind::LinAlg => linalg::run(rt, params),
        KernelKind::NBody => nbody::run(rt, params),
        KernelKind::TaskQueue => taskqueue::run(rt, params),
        KernelKind::Molecular => molecular::run(rt, params),
        KernelKind::MonteCarlo => montecarlo::run(rt, params),
        KernelKind::Pipeline => pipeline::run(rt, params),
        KernelKind::KMeans => kmeans::run(rt, params),
        KernelKind::Sort => sort::run(rt, params),
        KernelKind::Anneal => anneal::run(rt, params),
    }
}

/// Deterministic local busywork standing in for a benchmark's private
/// (uninstrumented) computation, advancing the Kendo counter like the
/// paper's basic-block instrumentation.
#[inline]
pub(crate) fn compute(ctx: &mut ThreadCtx, n: u32) -> u64 {
    let mut acc = 0x9e37_79b9_7f4a_7c15u64;
    for i in 0..n {
        acc = acc
            .rotate_left(13)
            .wrapping_mul(0xbf58_476d_1ce4_e5b9)
            .wrapping_add(u64::from(i));
    }
    ctx.tick(u64::from(n.max(1)));
    std::hint::black_box(acc)
}

/// Mixes a value into a deterministic output hash.
#[inline]
pub(crate) fn mix(h: u64, v: u64) -> u64 {
    (h ^ v)
        .wrapping_mul(0x100_0000_01b3)
        .rotate_left(17)
        .wrapping_add(0x9e37_79b9)
}

/// A tiny deterministic PRNG for kernels (xorshift64*).
#[derive(Debug, Clone)]
pub(crate) struct KernelRng(u64);

impl KernelRng {
    pub(crate) fn new(seed: u64) -> Self {
        KernelRng(seed | 1)
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    pub(crate) fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

/// Performs `boost` lock-protected increments of a shared counter —
/// the synchronization-rate model (each benchmark's profile maps its
/// sync intensity to a boost; see `run_benchmark`).
pub(crate) fn sync_work(
    ctx: &mut ThreadCtx,
    lock: &clean_runtime::CleanMutex,
    cell: &SharedArray<u32>,
    boost: u32,
) -> Result<()> {
    for _ in 0..boost {
        ctx.lock(lock)?;
        let v = ctx.read(cell, 0)?;
        ctx.write(cell, 0, v.wrapping_add(1))?;
        ctx.unlock(lock)?;
    }
    Ok(())
}

/// The seeded racy probe of the "unmodified" benchmark versions,
/// producing the full race taxonomy over a two-cell probe array:
///
/// * **Cell 0** — every worker loads the cell and then stores its id to
///   it with no ordering: WAW between any two workers' stores, RAW
///   between a load and another worker's earlier store. The WAW is
///   guaranteed in every schedule (WAW detection is symmetric: whichever
///   write checks second sees the other's unordered epoch, and
///   concurrent checks are caught by the CAS publish).
/// * **Cell 1** — every worker loads it, and only worker 1 stores to it.
///   That store has no unordered write to race with, so it is a pure
///   WAR against worker 0's earlier load (and a RAW source for later
///   loads): the race class CLEAN deliberately does not detect
///   (Section 3.2), visible only to the full baseline detectors.
pub(crate) fn racy_probe(
    ctx: &mut ThreadCtx,
    cell: &SharedArray<u32>,
    params: &KernelParams,
    worker: usize,
) -> Result<()> {
    if params.racy {
        let _ = ctx.read(cell, 0)?;
        ctx.write(cell, 0, worker as u32)?;
        let _ = ctx.read(cell, 1)?;
        if worker == 1 {
            ctx.write(cell, 1, worker as u32)?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::Scale;
    use clean_runtime::{CleanError, RuntimeConfig};

    fn rt() -> CleanRuntime {
        CleanRuntime::new(RuntimeConfig::new().heap_size(1 << 22).max_threads(12))
    }

    const ALL: &[KernelKind] = &[
        KernelKind::Stencil,
        KernelKind::LinAlg,
        KernelKind::NBody,
        KernelKind::TaskQueue,
        KernelKind::Molecular,
        KernelKind::MonteCarlo,
        KernelKind::Pipeline,
        KernelKind::KMeans,
        KernelKind::Sort,
        KernelKind::Anneal,
    ];

    #[test]
    fn all_kernels_run_race_free() {
        for &k in ALL {
            let rt = rt();
            let p = KernelParams::new().threads(4).scale(Scale::SimSmall);
            let out = run_kernel(k, &rt, &p);
            assert!(out.is_ok(), "{k:?}: {out:?}");
            assert!(
                rt.first_race().is_none(),
                "{k:?} raced: {:?}",
                rt.first_race()
            );
        }
    }

    #[test]
    fn all_kernels_detect_injected_races() {
        for &k in ALL {
            let rt = rt();
            let p = KernelParams::new().threads(4).racy(true);
            let out = run_kernel(k, &rt, &p);
            assert!(
                matches!(out, Err(CleanError::Race(_)) | Err(CleanError::Poisoned)),
                "{k:?} must raise a race exception, got {out:?}"
            );
            assert!(rt.first_race().is_some(), "{k:?}");
        }
    }

    #[test]
    fn kernels_are_deterministic_under_det_sync() {
        for &k in ALL {
            let once = || {
                let rt = rt();
                let p = KernelParams::new().threads(4);
                let out = run_kernel(k, &rt, &p).unwrap();
                (out, rt.stats().digest())
            };
            let (o1, d1) = once();
            let (o2, d2) = once();
            assert_eq!(o1, o2, "{k:?} output differs across runs");
            assert_eq!(d1, d2, "{k:?} digest differs across runs");
        }
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = KernelRng::new(7);
        let mut b = KernelRng::new(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        assert!(a.below(10) < 10);
    }

    #[test]
    fn mix_depends_on_input() {
        assert_ne!(mix(0, 1), mix(0, 2));
        assert_ne!(mix(1, 0), mix(2, 0));
    }
}
