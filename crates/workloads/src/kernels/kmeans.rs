//! Iterative clustering — the structure of streamcluster: each iteration
//! threads assign their slice of points to the nearest centre,
//! accumulating per-thread partial sums in disjoint areas; behind a
//! barrier the root thread folds the partials into new centres; a second
//! barrier republishes them to everyone.

use super::{compute, mix, racy_probe, KernelRng};
use crate::params::KernelParams;
use clean_runtime::{CleanRuntime, Result};

const K: usize = 4;
const DIM: usize = 2;

pub(crate) fn run(rt: &CleanRuntime, p: &KernelParams) -> Result<u64> {
    let points = 60 * p.scale.factor();
    let iters = 2 + p.scale.factor() / 2;
    let threads = p.threads.min(points);
    let data = rt.alloc_array::<f64>(points * DIM)?;
    let centres = rt.alloc_array::<f64>(K * DIM)?;
    // Per-thread partials: [thread][k][dim] sums plus [thread][k] counts.
    let partial = rt.alloc_array::<f64>(threads * K * DIM)?;
    let counts = rt.alloc_array::<u32>(threads * K)?;
    let probe = rt.alloc_array::<u32>(2)?;
    let barrier = rt.create_barrier(threads + 1); // workers + root
    let cpa = p.compute_per_access;
    let params = *p;

    rt.run(|ctx| {
        let mut rng = KernelRng::new(params.seed);
        for i in 0..points * DIM {
            ctx.write(&data, i, (rng.below(1000) as f64) / 10.0)?;
        }
        for k in 0..K * DIM {
            ctx.write(&centres, k, (rng.below(1000) as f64) / 10.0)?;
        }
        let per = points.div_ceil(threads);
        let mut kids = Vec::new();
        for t in 0..threads {
            let barrier = barrier.clone();
            kids.push(ctx.spawn(move |c| {
                racy_probe(c, &probe, &params, t)?;
                let lo = t * per;
                let hi = ((t + 1) * per).min(points);
                for _ in 0..iters {
                    // Zero own partials (own area: race-free).
                    for k in 0..K {
                        for d in 0..DIM {
                            c.write(&partial, (t * K + k) * DIM + d, 0.0f64)?;
                        }
                        c.write(&counts, t * K + k, 0u32)?;
                    }
                    for i in lo..hi {
                        let mut best = 0usize;
                        let mut best_d = f64::INFINITY;
                        for k in 0..K {
                            let mut dist = 0.0;
                            for d in 0..DIM {
                                let diff =
                                    c.read(&data, i * DIM + d)? - c.read(&centres, k * DIM + d)?;
                                dist += diff * diff;
                            }
                            if dist < best_d {
                                best_d = dist;
                                best = k;
                            }
                        }
                        for d in 0..DIM {
                            let v = c.read(&partial, (t * K + best) * DIM + d)?;
                            let x = c.read(&data, i * DIM + d)?;
                            c.write(&partial, (t * K + best) * DIM + d, v + x)?;
                        }
                        let n = c.read(&counts, t * K + best)?;
                        c.write(&counts, t * K + best, n + 1)?;
                        compute(c, cpa);
                    }
                    c.barrier_wait(&barrier)?; // root reduces
                    c.barrier_wait(&barrier)?; // centres republished
                }
                Ok(())
            })?);
        }
        // Root performs the reductions between the two barriers.
        for _ in 0..iters {
            ctx.barrier_wait(&barrier)?;
            for k in 0..K {
                let mut n = 0u32;
                let mut sums = [0.0f64; DIM];
                for t in 0..threads {
                    n += ctx.read(&counts, t * K + k)?;
                    for (d, s) in sums.iter_mut().enumerate() {
                        *s += ctx.read(&partial, (t * K + k) * DIM + d)?;
                    }
                }
                if n > 0 {
                    for (d, s) in sums.iter().enumerate() {
                        ctx.write(&centres, k * DIM + d, s / f64::from(n))?;
                    }
                }
            }
            ctx.barrier_wait(&barrier)?;
        }
        for k in kids {
            ctx.join(k)??;
        }
        let mut out = 0u64;
        for k in 0..K * DIM {
            out = mix(out, ctx.read(&centres, k)?.to_bits());
        }
        Ok(out)
    })
}
