//! Barrier-phased grid relaxation — the structure of ocean_cp/ocean_ncp,
//! fluidanimate and facesim: threads own row blocks of a 2-D grid and
//! alternate compute phases (reading the previous grid, including
//! neighbours' boundary rows) with global barriers.

use super::{compute, mix, racy_probe, sync_work};
use crate::params::KernelParams;
use clean_runtime::{CleanRuntime, Result};

pub(crate) fn run(rt: &CleanRuntime, p: &KernelParams) -> Result<u64> {
    let n = 24 + 4 * p.scale.factor(); // grid side
    let iters = 2 * p.scale.factor();
    let threads = p.threads.min(n);
    let src = rt.alloc_array::<f64>(n * n)?;
    let dst = rt.alloc_array::<f64>(n * n)?;
    let probe = rt.alloc_array::<u32>(2)?;
    let counter = rt.alloc_array::<u32>(1)?;
    let barrier = rt.create_barrier(threads);
    let slock = rt.create_mutex();
    let cpa = p.compute_per_access;
    let seed = p.seed;
    let params = *p;

    rt.run(|ctx| {
        // Root initializes the grid (ordered before workers via spawn).
        for i in 0..n * n {
            let v = ((i as u64).wrapping_mul(seed | 1) % 1000) as f64 / 10.0;
            ctx.write(&src, i, v)?;
            ctx.write(&dst, i, 0.0f64)?;
        }
        let rows_per = n.div_ceil(threads);
        let mut kids = Vec::new();
        for t in 0..threads {
            let barrier = barrier.clone();
            let slock = slock.clone();
            kids.push(ctx.spawn(move |c| {
                racy_probe(c, &probe, &params, t)?;
                let lo = t * rows_per;
                let hi = ((t + 1) * rows_per).min(n);
                let mut h = 0u64;
                for it in 0..iters {
                    // Even iterations read src/write dst; odd the reverse.
                    let (from, to) = if it.is_multiple_of(2) {
                        (src, dst)
                    } else {
                        (dst, src)
                    };
                    for r in lo..hi {
                        sync_work(c, &slock, &counter, params.sync_boost)?;
                        for col in 0..n {
                            let centre = c.read(&from, r * n + col)?;
                            let up = if r > 0 {
                                c.read(&from, (r - 1) * n + col)?
                            } else {
                                centre
                            };
                            let down = if r + 1 < n {
                                c.read(&from, (r + 1) * n + col)?
                            } else {
                                centre
                            };
                            let left = if col > 0 {
                                c.read(&from, r * n + col - 1)?
                            } else {
                                centre
                            };
                            let right = if col + 1 < n {
                                c.read(&from, r * n + col + 1)?
                            } else {
                                centre
                            };
                            let v = 0.2 * (centre + up + down + left + right);
                            c.write(&to, r * n + col, v)?;
                            compute(c, cpa);
                        }
                    }
                    c.barrier_wait(&barrier)?;
                    h = mix(h, it as u64);
                }
                Ok(h)
            })?);
        }
        let mut out = 0u64;
        for k in kids {
            out = mix(out, ctx.join(k)??);
        }
        // Root reads the final grid after joining every writer.
        let finals = if iters.is_multiple_of(2) { src } else { dst };
        for i in (0..n * n).step_by(7) {
            out = mix(out, ctx.read(&finals, i)?.to_bits());
        }
        Ok(out)
    })
}
