//! Profile → simulator-trace generation for the hardware experiments
//! (Section 6.3), replacing the paper's Pin front end.
//!
//! Each benchmark profile is rendered as a barrier-phased 8-thread event
//! stream. Within a phase every thread works on its own partition of the
//! working set, so cross-thread reuse only happens across phases — i.e.
//! behind a barrier — making every generated trace race-free by
//! construction (the performance experiments require race-free inputs,
//! Section 6.1).
//!
//! The generator models the access structure that the paper's
//! measurements hinge on:
//!
//! * **Temporal reuse**: most shared accesses re-touch data the same
//!   thread wrote earlier in the same phase — same thread, same epoch —
//!   which is what makes the hardware fast path resolve the majority of
//!   accesses (54.2% on average in Figure 10).
//! * **Fresh installs**: a deterministic cursor walks the partition,
//!   touching the full working set across phases (the cache-pressure
//!   driver of Figure 11); first writes take the update path.
//! * **Migratory sharing**: with the profile's migratory probability an
//!   access targets an address the partition's *previous owner* wrote
//!   last phase (partitions rotate every phase) — last written by another
//!   thread, so the check needs an in-memory vector-clock load.
//! * **Byte-granular writes** (dedup): single-byte stores into foreign or
//!   fresh lines fragment 4-byte epoch groups and expand metadata lines.

use crate::profiles::{BenchProfile, SyncRate};
use clean_core::{LockId, ThreadId, TraceEvent};
use clean_sim::{ProgramTrace, SimEvent};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Trace-generation options.
#[derive(Debug, Clone, Copy)]
pub struct TraceGenConfig {
    /// Threads (= simulated cores; the paper uses 8).
    pub threads: usize,
    /// Shared accesses to generate per thread (controls simulation time;
    /// simsmall-scale).
    pub accesses_per_thread: u64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TraceGenConfig {
    fn default() -> Self {
        TraceGenConfig {
            threads: 8,
            accesses_per_thread: 12_000,
            seed: 0x00C1_EA11,
        }
    }
}

/// Base address of each thread's private stack region.
fn stack_base(thread: usize) -> u64 {
    1 << 36 | (thread as u64) << 24
}

/// A recorded shared access target.
#[derive(Debug, Clone, Copy)]
struct Target {
    addr: u64,
    size: u8,
}

/// Generates the simulator trace for one benchmark profile.
pub fn generate_trace(profile: &BenchProfile, cfg: &TraceGenConfig) -> ProgramTrace {
    let mut rng = SmallRng::seed_from_u64(cfg.seed ^ hash_name(profile.name));
    let threads = cfg.threads;
    let mut prog = ProgramTrace::with_threads(threads);

    let phases = match profile.sync_rate {
        SyncRate::Low => 4,
        SyncRate::Medium => 12,
        SyncRate::High => 40,
    };
    let accesses_per_phase = (cfg.accesses_per_thread / phases).max(1);
    let lines = profile.working_set_lines.max(threads as u64);
    let lines_per_part = lines / threads as u64;

    // What each partition's owner wrote last phase (for migratory reuse),
    // and a fresh-line cursor walking each partition.
    let mut history: Vec<Vec<Target>> = vec![Vec::new(); threads];
    let mut cursor: Vec<u64> = vec![0; threads];

    // Probability splits for shared accesses. Byte-granular codes are
    // streaming (dedup compresses a stream chunk by chunk): most shared
    // accesses install fresh data instead of re-touching hot lines, so
    // their (expanded) metadata keeps missing in the caches.
    let p_migr = profile.migratory_fraction * 0.25;
    let p_fresh = if profile.byte_granular_fraction > 0.2 {
        0.55
    } else {
        0.12
    };

    for phase in 0..phases {
        for t in 0..threads {
            // Partition rotation: this phase's partition belonged to the
            // previous thread last phase.
            let part = (t + phase as usize) % threads;
            let part_base = part as u64 * lines_per_part * 64;
            let mut recent: Vec<Target> = Vec::new();
            let mut stack_cursor = 0u64;
            let trace = &mut prog.threads[t];
            for _ in 0..accesses_per_phase {
                // Private (stack) accesses interleave with shared ones.
                if rng.gen_bool(profile.private_fraction) {
                    let addr = stack_base(t) + (stack_cursor % 2048) * 8;
                    stack_cursor += 1;
                    let e = if rng.gen_bool(0.5) {
                        SimEvent::Write {
                            addr,
                            size: 8,
                            private: true,
                        }
                    } else {
                        SimEvent::Read {
                            addr,
                            size: 8,
                            private: true,
                        }
                    };
                    trace.push(e);
                    trace.push(SimEvent::Compute(profile.sim_compute));
                    continue;
                }
                let roll: f64 = rng.gen();
                let migr = roll < p_migr && !history[part].is_empty();
                let fresh = !migr && (roll < p_migr + p_fresh || recent.is_empty());
                let (target, write) = if migr {
                    // Re-access what the previous owner wrote: the check
                    // needs a vector-clock element load.
                    let h = &history[part];
                    let tg = h[rng.gen_range(0..h.len())];
                    (tg, rng.gen_bool(0.4))
                } else if fresh {
                    // Install epochs on the next fresh slot of the
                    // partition (walks the full working set over phases).
                    let line = cursor[part] % lines_per_part.max(1);
                    cursor[part] += 1;
                    let (size, offset) = pick_shape(profile, &mut rng);
                    (
                        Target {
                            addr: part_base + line * 64 + offset,
                            size,
                        },
                        true,
                    )
                } else {
                    // Temporal reuse of this thread's own recent writes:
                    // same thread, same epoch — the fast path.
                    let tg = recent[rng.gen_range(0..recent.len())];
                    (tg, rng.gen_bool(0.35))
                };
                let e = if write {
                    SimEvent::Write {
                        addr: target.addr,
                        size: target.size,
                        private: false,
                    }
                } else {
                    SimEvent::Read {
                        addr: target.addr,
                        size: target.size,
                        private: false,
                    }
                };
                if write {
                    recent.push(target);
                    if recent.len() > 512 {
                        recent.remove(0);
                    }
                }
                trace.push(e);
                trace.push(SimEvent::Compute(profile.sim_compute));
            }
            trace.push(SimEvent::Sync);
            history[part] = recent;
        }
    }
    prog
}

/// Reserved lock id used to model barriers in exported traces (generated
/// simulator traces carry no locks of their own).
pub const EXPORT_BARRIER_LOCK: LockId = LockId::MAX;

/// Flattens a generated simulator trace into the serialized
/// [`TraceEvent`] stream the analysis engines (and the `clean-trace`
/// store) consume.
///
/// Per-thread event lists are interleaved round-robin within each barrier
/// phase — a legal serialization, and race-free because partitions are
/// disjoint within a phase. Each barrier becomes two rounds of
/// acquire/release of [`EXPORT_BARRIER_LOCK`] over all threads: after the
/// first round the lock's clock dominates every thread, so the second
/// round's acquires order every pre-barrier event before every
/// post-barrier event (all-to-all happens-before), which is exactly a
/// barrier's semantics. `Compute` events carry no memory effects and are
/// dropped.
pub fn export_sim_trace(prog: &ProgramTrace) -> Vec<TraceEvent> {
    let threads = prog.threads.len();
    let mut out = Vec::new();
    let mut pos = vec![0usize; threads];
    loop {
        let mut at_sync = 0usize;
        // One round-robin pass: each live thread contributes its next
        // memory event (skipping compute), stopping at a barrier.
        let mut progressed = true;
        while progressed {
            progressed = false;
            at_sync = 0;
            for (t, cursor) in pos.iter_mut().enumerate() {
                let events = &prog.threads[t].events;
                // Skip compute events.
                while matches!(events.get(*cursor), Some(SimEvent::Compute(_))) {
                    *cursor += 1;
                }
                match events.get(*cursor) {
                    Some(SimEvent::Read { addr, size, .. }) => {
                        out.push(TraceEvent::Read {
                            tid: ThreadId::new(t as u16),
                            addr: *addr as usize,
                            size: usize::from(*size),
                        });
                        *cursor += 1;
                        progressed = true;
                    }
                    Some(SimEvent::Write { addr, size, .. }) => {
                        out.push(TraceEvent::Write {
                            tid: ThreadId::new(t as u16),
                            addr: *addr as usize,
                            size: usize::from(*size),
                        });
                        *cursor += 1;
                        progressed = true;
                    }
                    Some(SimEvent::Sync) => at_sync += 1,
                    Some(SimEvent::Compute(_)) => unreachable!("compute skipped above"),
                    None => {}
                }
            }
        }
        if at_sync == 0 {
            break; // all threads exhausted
        }
        // Every unfinished thread is parked at the barrier: emit it and
        // release the threads into the next phase.
        for _round in 0..2 {
            for t in 0..threads {
                let tid = ThreadId::new(t as u16);
                out.push(TraceEvent::Acquire {
                    tid,
                    lock: EXPORT_BARRIER_LOCK,
                });
                out.push(TraceEvent::Release {
                    tid,
                    lock: EXPORT_BARRIER_LOCK,
                });
            }
        }
        for p in pos.iter_mut() {
            *p += 1; // step over the Sync
        }
    }
    out
}

/// Picks an access width and line offset from the profile's mix.
fn pick_shape(profile: &BenchProfile, rng: &mut SmallRng) -> (u8, u64) {
    if rng.gen_bool(profile.byte_granular_fraction) {
        // dedup-style single-byte store at an arbitrary offset.
        (1, rng.gen_range(0..64u64))
    } else if rng.gen_bool(profile.multibyte_fraction) {
        let size = if rng.gen_bool(0.5) { 4u8 } else { 8u8 };
        let slots = 64 / u64::from(size);
        (size, rng.gen_range(0..slots) * u64::from(size))
    } else {
        // Sub-word *installs* behave like their covering word write (the
        // suites' packed fields are initialized by word-granular code, so
        // fresh writes never fragment epoch groups; the paper measures
        // <0.02% expansions outside dedup). Sub-word reads of such fields
        // happen through the reuse/migratory paths.
        (4, rng.gen_range(0..16u64) * 4)
    }
}

fn hash_name(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{benchmark, simulated_benchmarks};
    use clean_sim::{EpochMode, Machine, MachineConfig};

    fn small() -> TraceGenConfig {
        TraceGenConfig {
            threads: 4,
            accesses_per_thread: 800,
            seed: 1,
        }
    }

    #[test]
    fn traces_are_deterministic() {
        let p = benchmark("barnes").unwrap();
        let a = generate_trace(p, &small());
        let b = generate_trace(p, &small());
        assert_eq!(a.threads.len(), b.threads.len());
        for (x, y) in a.threads.iter().zip(&b.threads) {
            assert_eq!(x.events, y.events);
        }
    }

    #[test]
    fn traces_have_balanced_syncs() {
        let p = benchmark("fmm").unwrap();
        let t = generate_trace(p, &small());
        let syncs: Vec<usize> = t
            .threads
            .iter()
            .map(|th| {
                th.events
                    .iter()
                    .filter(|e| matches!(e, SimEvent::Sync))
                    .count()
            })
            .collect();
        assert!(syncs.iter().all(|&s| s == syncs[0] && s > 0));
    }

    #[test]
    fn generated_traces_are_race_free_under_detection() {
        for p in simulated_benchmarks().take(6) {
            let t = generate_trace(p, &small());
            let r = Machine::new(MachineConfig::with_detection(EpochMode::CleanCompact)).run(&t);
            assert_eq!(r.hw.unwrap().races, 0, "{} trace raced", p.name);
        }
    }

    #[test]
    fn fast_path_dominates_checked_accesses() {
        // The Figure 10 headline: most accesses resolve quickly.
        let p = benchmark("barnes").unwrap();
        let t = generate_trace(p, &small());
        let r = Machine::new(MachineConfig::with_detection(EpochMode::CleanCompact)).run(&t);
        let hw = r.hw.unwrap();
        assert!(
            hw.quick_fraction() > 0.7,
            "private+fast must dominate: {hw:?}"
        );
        assert!(
            hw.vc_load + hw.vc_load_update > 0,
            "migratory sharing present"
        );
    }

    #[test]
    fn dedup_trace_triggers_expansions() {
        let d = benchmark("dedup").unwrap();
        let t = generate_trace(d, &small());
        let r = Machine::new(MachineConfig::with_detection(EpochMode::CleanCompact)).run(&t);
        let hw = r.hw.unwrap();
        assert!(hw.expand > 0, "dedup must expand lines: {hw:?}");
        let b = benchmark("blackscholes").unwrap();
        let t = generate_trace(b, &small());
        let r = Machine::new(MachineConfig::with_detection(EpochMode::CleanCompact)).run(&t);
        assert_eq!(r.hw.unwrap().expand, 0, "word-granular code stays compact");
    }

    #[test]
    fn private_fraction_respected() {
        let p = benchmark("swaptions").unwrap(); // 65% private
        let t = generate_trace(p, &small());
        let (mut private, mut shared) = (0u64, 0u64);
        for th in &t.threads {
            for e in &th.events {
                match e {
                    SimEvent::Read { private: pr, .. } | SimEvent::Write { private: pr, .. } => {
                        if *pr {
                            private += 1;
                        } else {
                            shared += 1;
                        }
                    }
                    _ => {}
                }
            }
        }
        let frac = private as f64 / (private + shared) as f64;
        assert!((frac - p.private_fraction).abs() < 0.05, "{frac}");
    }
}
