//! Kernel run parameters: problem scale (the paper's native / simlarge /
//! simsmall inputs), thread count, and race injection for the unmodified
//! ("racy") benchmark versions.

/// Input scale, mirroring the paper's use of PARSEC input sets: `native`
/// for the software measurements (Section 6.2), `simlarge` for the
/// detection/determinism experiments (Section 6.2.2), `simsmall` for the
/// simulator (Section 6.3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Largest input (software performance runs).
    Native,
    /// Medium input (detection/determinism runs).
    SimLarge,
    /// Small input (simulator runs).
    SimSmall,
}

impl Scale {
    /// A size multiplier applied to each kernel's base problem size.
    pub fn factor(self) -> usize {
        match self {
            Scale::Native => 8,
            Scale::SimLarge => 3,
            Scale::SimSmall => 1,
        }
    }
}

/// Parameters of one kernel execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelParams {
    /// Worker threads (the paper runs 8).
    pub threads: usize,
    /// Input scale.
    pub scale: Scale,
    /// Seed for the kernel's internal data generation.
    pub seed: u64,
    /// Run the unmodified, racy version (injects the benchmark's seeded
    /// WAW/RAW races) instead of the data-race-free one.
    pub racy: bool,
    /// Private compute per shared access (models each benchmark's
    /// compute-to-communication ratio; lower = more shared-access-bound,
    /// like lu_cb/lu_ncb in Figure 7).
    pub compute_per_access: u32,
    /// Extra lock-protected operations per work unit, modelling each
    /// benchmark's synchronization rate (drives the Figure 6 det-sync
    /// overhead of fmm/radiosity/fluidanimate and the Table 1 rollover
    /// selectivity).
    pub sync_boost: u32,
    /// Instrumented thread-private scratch cells per worker (0 = none).
    /// Models each profile's private/stack fraction with *checked*
    /// accesses that only their owning thread ever touches — the
    /// footprint a static check plan can prove elidable (`run_benchmark`
    /// sets this from `BenchProfile::private_fraction`).
    pub private_cells: usize,
}

impl KernelParams {
    /// Default: 8 race-free threads at simsmall scale.
    pub fn new() -> Self {
        KernelParams {
            threads: 8,
            scale: Scale::SimSmall,
            seed: 0x5eed,
            racy: false,
            compute_per_access: 8,
            sync_boost: 0,
            private_cells: 0,
        }
    }

    /// Sets the thread count.
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = n;
        self
    }

    /// Sets the input scale.
    pub fn scale(mut self, s: Scale) -> Self {
        self.scale = s;
        self
    }

    /// Sets the data seed.
    pub fn seed(mut self, s: u64) -> Self {
        self.seed = s;
        self
    }

    /// Enables race injection (the unmodified benchmark version).
    pub fn racy(mut self, on: bool) -> Self {
        self.racy = on;
        self
    }

    /// Sets the compute-per-access weight.
    pub fn compute_per_access(mut self, n: u32) -> Self {
        self.compute_per_access = n;
        self
    }

    /// Sets the synchronization-rate boost.
    pub fn sync_boost(mut self, n: u32) -> Self {
        self.sync_boost = n;
        self
    }

    /// Sets the instrumented private-scratch cells per worker.
    pub fn private_cells(mut self, n: usize) -> Self {
        self.private_cells = n;
        self
    }
}

impl Default for KernelParams {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_factors_ordered() {
        assert!(Scale::Native.factor() > Scale::SimLarge.factor());
        assert!(Scale::SimLarge.factor() > Scale::SimSmall.factor());
    }

    #[test]
    fn builder_chains() {
        let p = KernelParams::new()
            .threads(4)
            .scale(Scale::Native)
            .seed(7)
            .racy(true)
            .compute_per_access(2);
        assert_eq!(p.threads, 4);
        assert!(p.racy);
        assert_eq!(p.compute_per_access, 2);
    }
}
