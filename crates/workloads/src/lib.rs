//! # clean-workloads
//!
//! Workload models of the 26 SPLASH-2/PARSEC Pthread benchmarks the CLEAN
//! paper evaluates on (Section 6.1; `freqmine` excluded as in the paper).
//!
//! Two views of each benchmark are provided:
//!
//! * **Runnable kernels** ([`run_kernel`], [`run_benchmark`]): real
//!   multithreaded programs against the CLEAN runtime API, grouped into
//!   ten kernel families that model the suites' parallel idioms
//!   (barrier-phased grids, dense LU, n-body, task queues, bucket-locked
//!   MD, Monte Carlo, bounded-queue pipelines, clustering, radix sort,
//!   annealing). Passing `racy = true` runs the benchmark's "unmodified"
//!   version with its seeded unsynchronized accesses.
//! * **Simulator traces** ([`generate_trace`]): barrier-phased,
//!   race-free-by-construction event streams whose access mix follows the
//!   profile (shared-access intensity, ≥4-byte fraction, byte-granular
//!   writes, migratory sharing, private/stack fraction, working-set
//!   size), driving the hardware experiments of Section 6.3.
//!
//! # Example
//!
//! ```
//! use clean_runtime::{CleanRuntime, RuntimeConfig};
//! use clean_workloads::{benchmark, run_benchmark, KernelParams};
//!
//! let profile = benchmark("streamcluster").unwrap();
//! let rt = CleanRuntime::new(RuntimeConfig::new().heap_size(1 << 22).max_threads(12));
//! let hash = run_benchmark(profile, &rt, &KernelParams::new().threads(4))?;
//! assert!(rt.first_race().is_none());
//! # let _ = hash;
//! # Ok::<(), clean_runtime::CleanError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod kernels;
mod params;
mod plan;
mod profiles;
mod tracegen;

pub use kernels::{run_kernel, KernelKind};
pub use params::{KernelParams, Scale};
pub use plan::{derive_benchmark_plan, derive_plan_from_trace, plan_from_trace};
pub use profiles::{
    benchmark, race_free_benchmarks, racy_benchmarks, simulated_benchmarks, BenchProfile, Suite,
    SyncRate, BENCHMARKS,
};
pub use tracegen::{export_sim_trace, generate_trace, TraceGenConfig, EXPORT_BARRIER_LOCK};

use clean_runtime::{CleanRuntime, Result};

/// Runs a benchmark's kernel with its profile-specific compute intensity.
///
/// # Errors
///
/// Propagates race exceptions and allocation failures from the runtime.
pub fn run_benchmark(
    profile: &BenchProfile,
    rt: &CleanRuntime,
    params: &KernelParams,
) -> Result<u64> {
    let base = match profile.sync_rate {
        SyncRate::High => 4,
        SyncRate::Medium => 1,
        SyncRate::Low => 0,
    };
    // Rollover-prone benchmarks synchronize often enough on native inputs
    // to exhaust their clocks (Table 1); model that with extra lock work.
    let boost = base + if profile.rollover_prone { 4 } else { 0 };
    // Instrumented private scratch scaled from the profile's private/stack
    // fraction, in whole 64-byte granules so a derived check plan can
    // prove the per-thread spans elidable.
    let private = ((profile.private_fraction * 256.0) as usize).next_multiple_of(64);
    let p = params
        .compute_per_access(profile.compute_per_access)
        .sync_boost(boost)
        .private_cells(private);
    run_kernel(profile.kernel, rt, &p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use clean_runtime::RuntimeConfig;

    #[test]
    fn run_benchmark_uses_profile_intensity() {
        let p = benchmark("lu_cb").unwrap();
        let rt = CleanRuntime::new(RuntimeConfig::new().heap_size(1 << 22).max_threads(12));
        let h = run_benchmark(p, &rt, &KernelParams::new().threads(2)).unwrap();
        assert_ne!(h, 0);
        assert!(rt.stats().shared_accesses() > 0);
    }
}
