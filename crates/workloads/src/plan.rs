//! Static check-plan derivation for workload kernels.
//!
//! A [`CheckPlan`](clean_core::CheckPlan) is derived ahead of time from a
//! recorded profiling run: the benchmark executes once with trace
//! recording on, the Read/Write events feed a
//! [`PlanObserver`](clean_core::PlanObserver), and the resulting plan is
//! compiled for installation via
//! [`RuntimeConfig::check_plan`](clean_runtime::RuntimeConfig::check_plan).
//! The production run then elides provably thread-private checks,
//! range-coalesces strided sweeps, and batches shared spans.

use clean_core::{CheckPlan, CompiledPlan, Coverage, PlanObserver, TraceEvent};
use clean_runtime::{CleanRuntime, Result, RuntimeConfig};
use std::sync::Arc;

use crate::{run_benchmark, BenchProfile, KernelParams};

/// Folds the Read/Write events of a recorded trace into a derived
/// [`CheckPlan`] plus its coverage statistics. Synchronization events
/// are ignored — ownership, not ordering, drives the classification.
/// `granule` is the derivation granule in bytes; pass 0 for the default
/// (64). The derived plan always validates, so `compile()` cannot fail.
pub fn derive_plan_from_trace(events: &[TraceEvent], granule: usize) -> (CheckPlan, Coverage) {
    let mut obs = if granule == 0 {
        PlanObserver::new()
    } else {
        PlanObserver::with_granule(granule)
    };
    for ev in events {
        match *ev {
            TraceEvent::Read { tid, addr, size } => {
                obs.observe(u32::from(tid.raw()), addr, size, false);
            }
            TraceEvent::Write { tid, addr, size } => {
                obs.observe(u32::from(tid.raw()), addr, size, true);
            }
            _ => {}
        }
    }
    obs.derive()
}

/// [`derive_plan_from_trace`], compiled and ready to install via
/// [`RuntimeConfig::check_plan`](clean_runtime::RuntimeConfig::check_plan).
pub fn plan_from_trace(events: &[TraceEvent], granule: usize) -> (Arc<CompiledPlan>, Coverage) {
    let (plan, coverage) = derive_plan_from_trace(events, granule);
    let compiled = plan
        .compile()
        .expect("derived plans carry sound witnesses by construction");
    (Arc::new(compiled), coverage)
}

/// Derives a benchmark's check plan from one profiling run.
///
/// The profiling run executes `profile` under `cfg` with trace recording
/// forced on and any installed plan cleared, so the observer sees the
/// full unelided access stream. The same `cfg` (plus the returned plan)
/// can then drive the production run.
///
/// # Errors
///
/// Propagates race exceptions and allocation failures from the profiling
/// run.
pub fn derive_benchmark_plan(
    profile: &BenchProfile,
    cfg: RuntimeConfig,
    params: &KernelParams,
) -> Result<(Arc<CompiledPlan>, Coverage)> {
    let rt = CleanRuntime::new(cfg.record_trace(true).check_plan(None));
    run_benchmark(profile, &rt, params)?;
    let events = rt
        .recorded_trace()
        .expect("record_trace was forced on for the profiling run");
    Ok(plan_from_trace(&events, 0))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::benchmark;

    #[test]
    fn derived_plan_reruns_clean_with_identical_verdict() {
        let profile = benchmark("blackscholes").unwrap();
        let cfg = RuntimeConfig::new().heap_size(1 << 22).max_threads(12);
        let params = KernelParams::new().threads(2);
        let (plan, cov) = derive_benchmark_plan(profile, cfg.clone(), &params).unwrap();
        assert!(cov.observed_accesses > 0);
        assert!(cov.total_bytes() > 0);

        let rt = CleanRuntime::new(cfg.check_plan(Some(plan)));
        run_benchmark(profile, &rt, &params).unwrap();
        assert!(rt.first_race().is_none());
    }

    #[test]
    fn monte_carlo_footprint_is_elide_heavy() {
        // blackscholes is mostly thread-private Monte Carlo state; the
        // derived plan should find real elision coverage.
        let profile = benchmark("blackscholes").unwrap();
        let cfg = RuntimeConfig::new().heap_size(1 << 22).max_threads(12);
        let (_, cov) =
            derive_benchmark_plan(profile, cfg, &KernelParams::new().threads(2)).unwrap();
        assert!(cov.elide_bytes > 0, "{cov:?}");
    }

    #[test]
    fn plan_from_trace_ignores_sync_events() {
        use clean_core::ThreadId;
        let events = vec![
            TraceEvent::Acquire {
                tid: ThreadId::new(0),
                lock: 1,
            },
            TraceEvent::Write {
                tid: ThreadId::new(0),
                addr: 0,
                size: 8,
            },
            TraceEvent::Release {
                tid: ThreadId::new(0),
                lock: 1,
            },
        ];
        let (_, cov) = plan_from_trace(&events, 0);
        assert_eq!(cov.observed_accesses, 1);
    }
}
