//! The 26 SPLASH-2 and PARSEC benchmark models (Section 6.1 of the paper:
//! all Pthread benchmarks of both suites, excluding only `freqmine`).
//!
//! Each profile maps a benchmark to (i) one of this crate's runnable
//! kernel families, (ii) the characteristics that drive the software
//! experiments (shared-access intensity — the Figure 7 shape — and
//! synchronization rate), and (iii) the parameters that drive simulator
//! trace generation (working-set size, access-size mix, sharing pattern —
//! the Figures 9–11 shapes). Values are calibrated against the paper's
//! reported behaviour: lu_cb/lu_ncb have the highest shared-access
//! frequency, dedup is byte-granular (expanded-line heavy), the ocean
//! codes and radix are LLC-pressure heavy, and barnes/fmm/radiosity/
//! facesim/fluidanimate roll their 23-bit clocks over (Table 1).

use crate::kernels::KernelKind;

/// Benchmark suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPLASH-2 (Woo et al., ISCA 1995).
    Splash2,
    /// PARSEC (Bienia, 2011).
    Parsec,
}

/// Synchronization intensity of a benchmark.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SyncRate {
    /// Rare synchronization (embarrassingly parallel).
    Low,
    /// Moderate synchronization.
    Medium,
    /// Frequent synchronization (fmm, radiosity, fluidanimate — the
    /// benchmarks whose det-sync overhead is visible in Figure 6).
    High,
}

/// Static description of one benchmark model.
#[derive(Debug, Clone, Copy)]
pub struct BenchProfile {
    /// Benchmark name as in the paper's figures.
    pub name: &'static str,
    /// Source suite.
    pub suite: Suite,
    /// The unmodified version contains data races (17 of 26 do).
    pub racy: bool,
    /// Uses a lock-free synchronization strategy with too many races to
    /// remove — excluded from the race-free experiments (canneal).
    pub lockfree: bool,
    /// Kernel family that models the benchmark's parallel structure.
    pub kernel: KernelKind,
    /// Private compute per shared access in the *software* kernels
    /// (lower ⇒ higher shared-access frequency; the Figure 7 knob —
    /// the lu codes are nearly pure shared traffic, everything else does
    /// real private work between accesses).
    pub compute_per_access: u32,
    /// Compute cycles per shared access in *simulator* traces (the
    /// Figure 9–11 machine has 1-cycle ALU ops, so this is calibrated
    /// separately from the software busywork loop).
    pub sim_compute: u32,
    /// Synchronization intensity.
    pub sync_rate: SyncRate,
    /// Simulator working set in 64-byte lines.
    pub working_set_lines: u64,
    /// Fraction of shared accesses that are ≥4 bytes (paper: >91.9% on
    /// average; dedup much lower).
    pub multibyte_fraction: f64,
    /// Fraction of byte-granular writes at sub-word offsets (drives
    /// compact→expanded transitions; dedup-dominated).
    pub byte_granular_fraction: f64,
    /// Fraction of accesses to data last written by another thread
    /// (defeats the sameThread fast path; drives VC loads).
    pub migratory_fraction: f64,
    /// Fraction of private (stack) accesses in the instruction stream.
    pub private_fraction: f64,
    /// Rolls 23-bit clocks over on native inputs (Table 1).
    pub rollover_prone: bool,
}

macro_rules! profile {
    ($name:literal, $suite:ident, racy=$racy:literal, lockfree=$lf:literal,
     $kernel:ident, cpa=$cpa:literal, sim=$sim:literal, sync=$sync:ident, ws=$ws:literal,
     multi=$multi:literal, bytes=$bytes:literal, migr=$migr:literal,
     priv=$priv:literal, roll=$roll:literal) => {
        BenchProfile {
            name: $name,
            suite: Suite::$suite,
            racy: $racy,
            lockfree: $lf,
            kernel: KernelKind::$kernel,
            compute_per_access: $cpa,
            sim_compute: $sim,
            sync_rate: SyncRate::$sync,
            working_set_lines: $ws,
            multibyte_fraction: $multi,
            byte_granular_fraction: $bytes,
            migratory_fraction: $migr,
            private_fraction: $priv,
            rollover_prone: $roll,
        }
    };
}

/// All 26 benchmarks (freqmine excluded, as in the paper).
pub const BENCHMARKS: &[BenchProfile] = &[
    // ---- SPLASH-2 (14) ----
    profile!("barnes", Splash2, racy=true, lockfree=false, NBody, cpa=25, sim=10, sync=Medium,
             ws=9000, multi=0.95, bytes=0.00, migr=0.25, priv=0.55, roll=true),
    profile!("cholesky", Splash2, racy=true, lockfree=false, LinAlg, cpa=14, sim=6, sync=Medium,
             ws=14000, multi=0.96, bytes=0.00, migr=0.20, priv=0.45, roll=false),
    profile!("fft", Splash2, racy=false, lockfree=false, LinAlg, cpa=30, sim=25, sync=Low,
             ws=22000, multi=0.97, bytes=0.00, migr=0.40, priv=0.40, roll=false),
    profile!("fmm", Splash2, racy=true, lockfree=false, NBody, cpa=30, sim=11, sync=High,
             ws=10000, multi=0.95, bytes=0.00, migr=0.22, priv=0.55, roll=true),
    profile!("lu_cb", Splash2, racy=false, lockfree=false, LinAlg, cpa=1, sim=1, sync=Medium,
             ws=16000, multi=0.98, bytes=0.00, migr=0.15, priv=0.20, roll=false),
    profile!("lu_ncb", Splash2, racy=false, lockfree=false, LinAlg, cpa=1, sim=1, sync=Medium,
             ws=16000, multi=0.98, bytes=0.00, migr=0.30, priv=0.20, roll=false),
    profile!("ocean_cp", Splash2, racy=true, lockfree=false, Stencil, cpa=60, sim=20, sync=Medium,
             ws=120000, multi=0.97, bytes=0.00, migr=0.12, priv=0.35, roll=false),
    profile!("ocean_ncp", Splash2, racy=true, lockfree=false, Stencil, cpa=60, sim=20, sync=Medium,
             ws=150000, multi=0.97, bytes=0.00, migr=0.12, priv=0.35, roll=false),
    profile!("radiosity", Splash2, racy=true, lockfree=false, TaskQueue, cpa=25, sim=9, sync=High,
             ws=7000, multi=0.94, bytes=0.01, migr=0.30, priv=0.55, roll=true),
    profile!("radix", Splash2, racy=false, lockfree=false, Sort, cpa=8, sim=3, sync=Medium,
             ws=130000, multi=0.96, bytes=0.00, migr=0.45, priv=0.25, roll=false),
    profile!("raytrace", Splash2, racy=true, lockfree=false, TaskQueue, cpa=35, sim=12, sync=Medium,
             ws=12000, multi=0.94, bytes=0.00, migr=0.18, priv=0.60, roll=false),
    profile!("volrend", Splash2, racy=true, lockfree=false, TaskQueue, cpa=30, sim=10, sync=Medium,
             ws=8000, multi=0.92, bytes=0.02, migr=0.20, priv=0.60, roll=false),
    profile!("water_nsquared", Splash2, racy=true, lockfree=false, Molecular, cpa=25, sim=9, sync=Medium,
             ws=6000, multi=0.96, bytes=0.00, migr=0.20, priv=0.55, roll=false),
    profile!("water_spatial", Splash2, racy=true, lockfree=false, Molecular, cpa=25, sim=9, sync=Medium,
             ws=6500, multi=0.96, bytes=0.00, migr=0.18, priv=0.55, roll=false),
    // ---- PARSEC (12) ----
    profile!("blackscholes", Parsec, racy=false, lockfree=false, MonteCarlo, cpa=60, sim=14, sync=Low,
             ws=5000, multi=0.98, bytes=0.00, migr=0.05, priv=0.65, roll=false),
    profile!("bodytrack", Parsec, racy=false, lockfree=false, TaskQueue, cpa=25, sim=8, sync=Medium,
             ws=9000, multi=0.93, bytes=0.02, migr=0.25, priv=0.55, roll=false),
    profile!("canneal", Parsec, racy=true, lockfree=true, Anneal, cpa=15, sim=6, sync=Low,
             ws=90000, multi=0.92, bytes=0.01, migr=0.50, priv=0.40, roll=false),
    profile!("dedup", Parsec, racy=true, lockfree=false, Pipeline, cpa=12, sim=5, sync=Medium,
             ws=30000, multi=0.45, bytes=0.50, migr=0.45, priv=0.35, roll=false),
    profile!("facesim", Parsec, racy=false, lockfree=false, Stencil, cpa=60, sim=25, sync=Medium,
             ws=60000, multi=0.96, bytes=0.00, migr=0.12, priv=0.45, roll=true),
    profile!("ferret", Parsec, racy=true, lockfree=false, Pipeline, cpa=25, sim=9, sync=Medium,
             ws=15000, multi=0.90, bytes=0.05, migr=0.40, priv=0.55, roll=false),
    profile!("fluidanimate", Parsec, racy=true, lockfree=false, Stencil, cpa=40, sim=6, sync=High,
             ws=40000, multi=0.95, bytes=0.00, migr=0.15, priv=0.45, roll=true),
    profile!("parsec_raytrace", Parsec, racy=false, lockfree=false, TaskQueue, cpa=35, sim=12, sync=Low,
             ws=25000, multi=0.95, bytes=0.00, migr=0.15, priv=0.60, roll=false),
    profile!("streamcluster", Parsec, racy=true, lockfree=false, KMeans, cpa=14, sim=5, sync=Medium,
             ws=20000, multi=0.97, bytes=0.00, migr=0.30, priv=0.35, roll=false),
    profile!("swaptions", Parsec, racy=false, lockfree=false, MonteCarlo, cpa=60, sim=13, sync=Low,
             ws=4000, multi=0.97, bytes=0.00, migr=0.05, priv=0.65, roll=false),
    profile!("vips", Parsec, racy=true, lockfree=false, Pipeline, cpa=25, sim=8, sync=Medium,
             ws=18000, multi=0.90, bytes=0.04, migr=0.35, priv=0.55, roll=false),
    profile!("x264", Parsec, racy=true, lockfree=false, Pipeline, cpa=20, sim=7, sync=Medium,
             ws=22000, multi=0.88, bytes=0.05, migr=0.35, priv=0.50, roll=false),
];

/// Looks a profile up by name.
pub fn benchmark(name: &str) -> Option<&'static BenchProfile> {
    BENCHMARKS.iter().find(|b| b.name == name)
}

/// The benchmarks with a race-free ("modified") version: everything but
/// the lock-free canneal (Section 6.1).
pub fn race_free_benchmarks() -> impl Iterator<Item = &'static BenchProfile> {
    BENCHMARKS.iter().filter(|b| !b.lockfree)
}

/// The 17 benchmarks whose unmodified version contains races.
pub fn racy_benchmarks() -> impl Iterator<Item = &'static BenchProfile> {
    BENCHMARKS.iter().filter(|b| b.racy)
}

/// The benchmarks used in the simulator experiments: everything except
/// facesim (omitted in Section 6.3.1 for simulation time) and canneal
/// (no race-free version to trace).
pub fn simulated_benchmarks() -> impl Iterator<Item = &'static BenchProfile> {
    BENCHMARKS
        .iter()
        .filter(|b| b.name != "facesim" && !b.lockfree)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_six_benchmarks() {
        assert_eq!(BENCHMARKS.len(), 26);
        assert_eq!(
            BENCHMARKS
                .iter()
                .filter(|b| b.suite == Suite::Splash2)
                .count(),
            14
        );
        assert_eq!(
            BENCHMARKS
                .iter()
                .filter(|b| b.suite == Suite::Parsec)
                .count(),
            12
        );
    }

    #[test]
    fn seventeen_racy() {
        assert_eq!(racy_benchmarks().count(), 17);
    }

    #[test]
    fn canneal_is_the_only_lockfree() {
        let lf: Vec<_> = BENCHMARKS.iter().filter(|b| b.lockfree).collect();
        assert_eq!(lf.len(), 1);
        assert_eq!(lf[0].name, "canneal");
    }

    #[test]
    fn five_rollover_prone_matching_table1() {
        let names: Vec<_> = BENCHMARKS
            .iter()
            .filter(|b| b.rollover_prone)
            .map(|b| b.name)
            .collect();
        assert_eq!(
            names,
            ["barnes", "fmm", "radiosity", "facesim", "fluidanimate"]
        );
    }

    #[test]
    fn lookup_by_name() {
        assert!(benchmark("dedup").is_some());
        assert!(benchmark("freqmine").is_none(), "excluded in the paper");
    }

    #[test]
    fn lu_is_most_access_bound() {
        let min = BENCHMARKS
            .iter()
            .min_by_key(|b| b.compute_per_access)
            .unwrap();
        assert!(min.name.starts_with("lu_"));
    }

    #[test]
    fn dedup_is_byte_granular() {
        let d = benchmark("dedup").unwrap();
        assert!(d.byte_granular_fraction > 0.2);
        assert!(d.multibyte_fraction < 0.6);
        for b in BENCHMARKS.iter().filter(|b| b.name != "dedup") {
            assert!(b.byte_granular_fraction < d.byte_granular_fraction);
        }
    }

    #[test]
    fn simulated_set_omits_facesim_and_canneal() {
        let names: Vec<_> = simulated_benchmarks().map(|b| b.name).collect();
        assert!(!names.contains(&"facesim"));
        assert!(!names.contains(&"canneal"));
        assert_eq!(names.len(), 24);
    }

    #[test]
    fn fractions_are_probabilities() {
        for b in BENCHMARKS {
            for f in [
                b.multibyte_fraction,
                b.byte_granular_fraction,
                b.migratory_fraction,
                b.private_fraction,
            ] {
                assert!((0.0..=1.0).contains(&f), "{}: {f}", b.name);
            }
        }
    }
}
