//! The Kendo weak-determinism algorithm (Sections 2.4 and 3.3 of the CLEAN
//! paper; Olszewski et al., ASPLOS 2009).
//!
//! Each thread maintains a *deterministic counter* incremented on
//! deterministic events (the paper instruments basic blocks above a size
//! cutoff; here, workloads call [`DetHandle::tick`]). A thread may perform
//! a synchronization operation only when its counter is the minimum across
//! all running threads, with the thread id breaking ties. Since the
//! counters depend only on program progress — never on physical timing —
//! the order in which synchronization operations are granted is the same
//! in every execution.

use clean_core::ThreadId;
use core::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

/// Error returned when a deterministic wait is abandoned because the poll
/// callback requested an abort — in CLEAN, because another thread raised a
/// race exception and the execution is stopping.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Aborted;

impl fmt::Display for Aborted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("deterministic wait aborted")
    }
}

impl std::error::Error for Aborted {}

/// Published counter value meaning "not participating": the slot's thread
/// is finished, blocked in a synchronization primitive, or was never
/// started. Excluded threads never inhibit other threads' turns.
pub const EXCLUDED: u64 = u64::MAX;

/// Observer/driver of a [`Kendo`] table's deterministic logical clocks.
///
/// A controlled scheduler (the `clean-sched` explorer) installs a hook via
/// [`Kendo::set_hook`] to watch every logical-clock publication and every
/// granted turn, letting it steer exploration by deterministic logical time
/// instead of physical timing and to check that the grant sequence of a
/// race-free program is identical across all explored schedules (the
/// paper's determinism claim, Section 3.3).
///
/// All callbacks default to no-ops; implement only what you need. A
/// published counter equal to [`EXCLUDED`] means the slot left turn
/// arbitration (blocked, finished, or dropped).
pub trait SchedHook: Send + Sync {
    /// A slot was registered with an initial counter.
    fn on_register(&self, tid: ThreadId, initial: u64) {
        let _ = (tid, initial);
    }

    /// A slot published a new counter value (tick, advance, include,
    /// exclude, or a `publish_on_behalf` by a waker).
    fn on_publish(&self, tid: ThreadId, counter: u64) {
        let _ = (tid, counter);
    }

    /// A thread's [`DetHandle::wait_for_turn`] completed: the turn was
    /// granted at this deterministic counter.
    fn on_turn_granted(&self, tid: ThreadId, counter: u64) {
        let _ = (tid, counter);
    }
}

/// Shared table of published deterministic counters, one slot per possible
/// thread id.
///
/// The table itself is passive; per-thread mutation goes through the owning
/// thread's [`DetHandle`].
pub struct Kendo {
    slots: Box<[AtomicU64]>,
    /// Optional scheduler hook, set at most once per table. An unset hook
    /// costs one atomic load on the publish path.
    hook: OnceLock<Arc<dyn SchedHook>>,
}

impl fmt::Debug for Kendo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Kendo")
            .field("slots", &self.slots)
            .field("hooked", &self.hook.get().is_some())
            .finish()
    }
}

impl Kendo {
    /// Creates a counter table with capacity for `max_threads` concurrent
    /// threads. All slots start excluded.
    ///
    /// # Panics
    ///
    /// Panics if `max_threads` is zero.
    pub fn new(max_threads: usize) -> Self {
        assert!(max_threads > 0, "need at least one thread slot");
        Kendo {
            slots: (0..max_threads).map(|_| AtomicU64::new(EXCLUDED)).collect(),
            hook: OnceLock::new(),
        }
    }

    /// Capacity of the table.
    pub fn max_threads(&self) -> usize {
        self.slots.len()
    }

    /// Installs a scheduler hook observing every publication and granted
    /// turn. At most one hook per table; returns `false` if one was
    /// already installed (the new hook is dropped).
    pub fn set_hook(&self, hook: Arc<dyn SchedHook>) -> bool {
        self.hook.set(hook).is_ok()
    }

    #[inline]
    pub(crate) fn hook(&self) -> Option<&Arc<dyn SchedHook>> {
        self.hook.get()
    }

    /// Registers a thread slot with an initial counter and returns the
    /// thread-owned handle.
    ///
    /// # Panics
    ///
    /// Panics if the slot is already registered or out of range.
    pub fn register(self: &std::sync::Arc<Self>, tid: ThreadId, initial: u64) -> DetHandle {
        assert!(tid.index() < self.slots.len(), "tid out of range");
        let prev = self.slots[tid.index()].swap(initial, Ordering::SeqCst);
        assert_eq!(prev, EXCLUDED, "slot {tid} registered twice");
        if let Some(h) = self.hook() {
            h.on_register(tid, initial);
        }
        DetHandle {
            kendo: std::sync::Arc::clone(self),
            tid,
            counter: initial,
        }
    }

    /// Reads a slot's published counter ([`EXCLUDED`] if not running).
    pub fn published(&self, tid: ThreadId) -> u64 {
        self.slots[tid.index()].load(Ordering::Acquire)
    }

    /// Publishes `counter` on behalf of an *excluded* thread that is being
    /// woken (condvar signal, barrier release, join hand-off).
    ///
    /// Without this, a woken thread is invisible to turn arbitration until
    /// it physically notices the wake-up and republishes — a window in
    /// which logically later threads could overtake it, breaking
    /// determinism. The waker closes the window by publishing the resume
    /// counter immediately, under the same lock that ordered the
    /// exclusion. The published value must be ≤ the waiter's true resume
    /// counter (publishing a smaller value only makes others wait longer,
    /// which is always safe); the waiter's own
    /// [`DetHandle::include`] then settles the exact value.
    pub fn publish_on_behalf(&self, tid: ThreadId, counter: u64) {
        self.slots[tid.index()].store(counter, Ordering::SeqCst);
        if let Some(h) = self.hook() {
            h.on_publish(tid, counter);
        }
    }

    /// Returns true if it is `tid`'s turn: its counter is strictly smaller
    /// than every other participating counter, with smaller tid winning
    /// ties.
    pub fn is_turn(&self, tid: ThreadId, counter: u64) -> bool {
        for (j, slot) in self.slots.iter().enumerate() {
            if j == tid.index() {
                continue;
            }
            let c = slot.load(Ordering::Acquire);
            if c < counter || (c == counter && j < tid.index()) {
                return false;
            }
        }
        true
    }
}

/// A thread's private deterministic clock, bound to one [`Kendo`] slot.
///
/// The handle owns the authoritative counter value; [`DetHandle::tick`] and
/// [`DetHandle::advance`] mutate it and publish the new value so other
/// threads' turn checks observe it.
///
/// Dropping the handle excludes the slot (equivalent to the thread
/// finishing).
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use clean_core::ThreadId;
/// use clean_sync::Kendo;
///
/// let kendo = Arc::new(Kendo::new(4));
/// let mut h = kendo.register(ThreadId::new(0), 0);
/// h.tick(10);
/// assert_eq!(h.counter(), 10);
/// // Only thread: always its turn.
/// h.wait_for_turn(|| false).unwrap();
/// ```
#[derive(Debug)]
pub struct DetHandle {
    kendo: std::sync::Arc<Kendo>,
    tid: ThreadId,
    counter: u64,
}

impl DetHandle {
    /// The thread id of this handle's slot.
    pub fn tid(&self) -> ThreadId {
        self.tid
    }

    /// The shared counter table.
    pub fn kendo(&self) -> &std::sync::Arc<Kendo> {
        &self.kendo
    }

    /// Current deterministic counter value.
    pub fn counter(&self) -> u64 {
        self.counter
    }

    #[inline]
    fn publish(&self, value: u64) {
        // Release suffices: counters are monotone per slot, and a stale
        // (smaller) value read by another thread only makes that thread
        // wait longer — it can never grant a turn too early.
        self.kendo.slots[self.tid.index()].store(value, Ordering::Release);
        if let Some(h) = self.kendo.hook() {
            h.on_publish(self.tid, value);
        }
    }

    /// Advances the counter by `n` deterministic events (the paper's
    /// instrumented basic-block increments).
    #[inline]
    pub fn tick(&mut self, n: u64) {
        self.counter = self.counter.saturating_add(n);
        self.publish(self.counter);
    }

    /// Advances the counter by one — performed after every granted
    /// synchronization operation so the next operation happens at a later
    /// deterministic time.
    #[inline]
    pub fn advance(&mut self) {
        self.tick(1);
    }

    /// Sets the counter to `value` if it is larger than the current value
    /// (used when resuming from barriers/condvars at a deterministic
    /// release time).
    pub fn advance_to(&mut self, value: u64) {
        if value > self.counter {
            self.counter = value;
            self.publish(self.counter);
        }
    }

    /// Spins until it is this thread's turn (its counter is the global
    /// minimum, tid-tie-broken).
    ///
    /// `poll` is invoked on every spin iteration; the CLEAN runtime uses it
    /// to service pending deterministic metadata resets (keeping rollover
    /// rendezvous deadlock-free while threads wait for turns) and to
    /// observe race-exception shutdown: returning `true` from `poll`
    /// abandons the wait.
    ///
    /// # Errors
    ///
    /// Returns [`Aborted`] when `poll` requests an abort.
    pub fn wait_for_turn<F: FnMut() -> bool>(&self, mut poll: F) -> Result<(), Aborted> {
        let mut spins = 0u32;
        while !self.kendo.is_turn(self.tid, self.counter) {
            if poll() {
                return Err(Aborted);
            }
            spins += 1;
            // Yield aggressively: the thread whose counter must advance
            // may be descheduled (we may even share its core).
            if spins.is_multiple_of(4) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        if let Some(h) = self.kendo.hook() {
            h.on_turn_granted(self.tid, self.counter);
        }
        Ok(())
    }

    /// Excludes this thread from turn arbitration (entering a blocking
    /// wait). The counter value is retained locally and republished by
    /// [`include`](Self::include).
    pub fn exclude(&self) {
        self.publish(EXCLUDED);
    }

    /// Re-enters turn arbitration after [`exclude`](Self::exclude),
    /// resuming at the deterministic time `resume_counter` (if it exceeds
    /// the retained counter).
    pub fn include(&mut self, resume_counter: u64) {
        if resume_counter > self.counter {
            self.counter = resume_counter;
        }
        self.publish(self.counter);
    }
}

impl Drop for DetHandle {
    fn drop(&mut self) {
        self.publish(EXCLUDED);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_thread_always_has_turn() {
        let k = Arc::new(Kendo::new(4));
        let h = k.register(ThreadId::new(0), 0);
        assert!(k.is_turn(h.tid(), h.counter()));
    }

    #[test]
    fn lower_counter_wins() {
        let k = Arc::new(Kendo::new(2));
        let h0 = k.register(ThreadId::new(0), 5);
        let h1 = k.register(ThreadId::new(1), 3);
        assert!(!k.is_turn(h0.tid(), h0.counter()));
        assert!(k.is_turn(h1.tid(), h1.counter()));
    }

    #[test]
    fn tid_breaks_ties() {
        let k = Arc::new(Kendo::new(2));
        let h0 = k.register(ThreadId::new(0), 7);
        let h1 = k.register(ThreadId::new(1), 7);
        assert!(k.is_turn(h0.tid(), h0.counter()));
        assert!(!k.is_turn(h1.tid(), h1.counter()));
    }

    #[test]
    fn excluded_threads_do_not_block_turns() {
        let k = Arc::new(Kendo::new(3));
        let h0 = k.register(ThreadId::new(0), 100);
        let h1 = k.register(ThreadId::new(1), 1);
        h1.exclude();
        assert!(k.is_turn(h0.tid(), h0.counter()));
        drop(h1);
        assert!(k.is_turn(h0.tid(), h0.counter()));
    }

    #[test]
    fn tick_publishes() {
        let k = Arc::new(Kendo::new(2));
        let mut h = k.register(ThreadId::new(1), 0);
        h.tick(41);
        h.advance();
        assert_eq!(h.counter(), 42);
        assert_eq!(k.published(ThreadId::new(1)), 42);
    }

    #[test]
    fn include_takes_max() {
        let k = Arc::new(Kendo::new(2));
        let mut h = k.register(ThreadId::new(0), 10);
        h.exclude();
        assert_eq!(k.published(ThreadId::new(0)), EXCLUDED);
        h.include(5);
        assert_eq!(h.counter(), 10, "resume below retained keeps retained");
        h.exclude();
        h.include(20);
        assert_eq!(h.counter(), 20);
        assert_eq!(k.published(ThreadId::new(0)), 20);
    }

    #[test]
    fn advance_to_is_monotone() {
        let k = Arc::new(Kendo::new(1));
        let mut h = k.register(ThreadId::new(0), 3);
        h.advance_to(2);
        assert_eq!(h.counter(), 3);
        h.advance_to(9);
        assert_eq!(h.counter(), 9);
    }

    #[test]
    fn drop_excludes_slot() {
        let k = Arc::new(Kendo::new(2));
        let h = k.register(ThreadId::new(0), 0);
        drop(h);
        assert_eq!(k.published(ThreadId::new(0)), EXCLUDED);
        // Slot can be re-registered after drop (tid reuse, Section 4.5).
        let h2 = k.register(ThreadId::new(0), 0);
        assert_eq!(k.published(ThreadId::new(0)), 0);
        drop(h2);
    }

    #[test]
    #[should_panic]
    fn double_register_panics() {
        let k = Arc::new(Kendo::new(2));
        let _a = k.register(ThreadId::new(0), 0);
        let _b = k.register(ThreadId::new(0), 0);
    }

    #[test]
    fn wait_for_turn_unblocks_when_other_advances() {
        let k = Arc::new(Kendo::new(2));
        let h0 = k.register(ThreadId::new(0), 10);
        let mut h1 = k.register(ThreadId::new(1), 0);
        let k2 = Arc::clone(&k);
        let waiter = std::thread::spawn(move || {
            h0.wait_for_turn(|| false).unwrap();
            k2.published(ThreadId::new(1))
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        h1.tick(100); // now h0 (counter 10) is minimal
        let seen = waiter.join().unwrap();
        assert_eq!(seen, 100);
    }

    #[test]
    fn sched_hook_observes_publishes_and_grants() {
        use parking_lot::Mutex;

        #[derive(Default)]
        struct Recorder {
            publishes: Mutex<Vec<(u16, u64)>>,
            registers: Mutex<Vec<(u16, u64)>>,
            grants: Mutex<Vec<(u16, u64)>>,
        }
        impl SchedHook for Recorder {
            fn on_register(&self, tid: ThreadId, initial: u64) {
                self.registers.lock().push((tid.raw(), initial));
            }
            fn on_publish(&self, tid: ThreadId, counter: u64) {
                self.publishes.lock().push((tid.raw(), counter));
            }
            fn on_turn_granted(&self, tid: ThreadId, counter: u64) {
                self.grants.lock().push((tid.raw(), counter));
            }
        }

        let k = Arc::new(Kendo::new(2));
        let rec = Arc::new(Recorder::default());
        assert!(k.set_hook(Arc::clone(&rec) as Arc<dyn SchedHook>));
        assert!(
            !k.set_hook(Arc::new(Recorder::default())),
            "second hook rejected"
        );

        let mut h = k.register(ThreadId::new(0), 3);
        assert_eq!(*rec.registers.lock(), vec![(0, 3)]);
        h.tick(2);
        h.exclude();
        h.include(10);
        k.publish_on_behalf(ThreadId::new(1), 7);
        assert_eq!(
            *rec.publishes.lock(),
            vec![(0, 5), (0, EXCLUDED), (0, 10), (1, 7)]
        );
        k.publish_on_behalf(ThreadId::new(1), EXCLUDED);
        h.wait_for_turn(|| false).unwrap();
        assert_eq!(*rec.grants.lock(), vec![(0, 10)]);
    }

    #[test]
    fn wait_for_turn_aborts_on_poll_request() {
        let k = Arc::new(Kendo::new(2));
        let h0 = k.register(ThreadId::new(0), 10);
        let _h1 = k.register(ThreadId::new(1), 0); // blocks h0's turn forever
        let mut polls = 0;
        let res = h0.wait_for_turn(|| {
            polls += 1;
            polls > 3
        });
        assert_eq!(res, Err(Aborted));
    }
}
