//! Deterministic thread-id allocation (Section 3.3: "the thread creation
//! routine must be modified ... to ensure that thread ids are
//! deterministic", and Section 4.5: ids are reused after join).
//!
//! The registry always hands out the smallest free id. Provided creation
//! and join are themselves deterministic events (the CLEAN runtime makes
//! them so via Kendo turns), the id assigned to each logical thread is the
//! same in every execution.

use clean_core::ThreadId;
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::fmt;

/// Error returned when the registry has no free thread ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ThreadLimitError {
    /// The registry's fixed capacity.
    pub capacity: usize,
}

impl fmt::Display for ThreadLimitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "thread limit reached: all {} thread ids are live",
            self.capacity
        )
    }
}

impl std::error::Error for ThreadLimitError {}

#[derive(Debug)]
struct RegistryState {
    free: BTreeSet<u16>,
    live: usize,
    total_created: u64,
}

/// Allocator of dense, reusable, deterministic thread ids.
///
/// # Examples
///
/// ```
/// use clean_sync::ThreadRegistry;
/// let reg = ThreadRegistry::new(4);
/// let a = reg.allocate()?;
/// let b = reg.allocate()?;
/// assert_eq!(a.index(), 0);
/// assert_eq!(b.index(), 1);
/// reg.release(a);
/// assert_eq!(reg.allocate()?.index(), 0, "smallest free id is reused");
/// # Ok::<(), clean_sync::ThreadLimitError>(())
/// ```
pub struct ThreadRegistry {
    capacity: usize,
    state: Mutex<RegistryState>,
}

impl ThreadRegistry {
    /// Creates a registry with `capacity` thread ids (the epoch layout's
    /// `max_threads`, e.g. 256 for the paper's 8-bit tid field).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero or exceeds `u16::MAX + 1`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "capacity must be positive");
        assert!(capacity <= (u16::MAX as usize) + 1, "capacity too large");
        ThreadRegistry {
            capacity,
            state: Mutex::new(RegistryState {
                free: (0..capacity as u16).collect(),
                live: 0,
                total_created: 0,
            }),
        }
    }

    /// Fixed id capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of ids currently live.
    pub fn live(&self) -> usize {
        self.state.lock().live
    }

    /// Total allocations performed (deterministic under deterministic
    /// spawning; used by the determinism experiments).
    pub fn total_created(&self) -> u64 {
        self.state.lock().total_created
    }

    /// Allocates the smallest free thread id.
    ///
    /// # Errors
    ///
    /// Returns [`ThreadLimitError`] when all ids are live.
    pub fn allocate(&self) -> Result<ThreadId, ThreadLimitError> {
        let mut st = self.state.lock();
        match st.free.iter().next().copied() {
            Some(id) => {
                st.free.remove(&id);
                st.live += 1;
                st.total_created += 1;
                Ok(ThreadId::new(id))
            }
            None => Err(ThreadLimitError {
                capacity: self.capacity,
            }),
        }
    }

    /// Returns `tid` to the free pool (on join — Section 4.5).
    ///
    /// # Panics
    ///
    /// Panics if `tid` is not currently live.
    pub fn release(&self, tid: ThreadId) {
        let mut st = self.state.lock();
        assert!(
            (tid.index() as u16) < self.capacity as u16 && !st.free.contains(&tid.raw()),
            "releasing non-live thread id {tid}"
        );
        st.free.insert(tid.raw());
        st.live -= 1;
    }
}

impl fmt::Debug for ThreadRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ThreadRegistry")
            .field("capacity", &self.capacity)
            .field("live", &self.live())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocates_dense_ids() {
        let r = ThreadRegistry::new(8);
        for i in 0..8 {
            assert_eq!(r.allocate().unwrap().index(), i);
        }
        assert_eq!(r.live(), 8);
        assert_eq!(r.allocate().unwrap_err().capacity, 8);
    }

    #[test]
    fn reuses_smallest_free_id() {
        let r = ThreadRegistry::new(4);
        let ids: Vec<ThreadId> = (0..4).map(|_| r.allocate().unwrap()).collect();
        r.release(ids[2]);
        r.release(ids[0]);
        assert_eq!(r.allocate().unwrap().index(), 0);
        assert_eq!(r.allocate().unwrap().index(), 2);
    }

    #[test]
    fn total_created_counts_all() {
        let r = ThreadRegistry::new(2);
        let a = r.allocate().unwrap();
        r.release(a);
        let _ = r.allocate().unwrap();
        assert_eq!(r.total_created(), 2);
    }

    #[test]
    #[should_panic]
    fn double_release_panics() {
        let r = ThreadRegistry::new(2);
        let a = r.allocate().unwrap();
        r.release(a);
        r.release(a);
    }

    #[test]
    fn limit_error_displays() {
        let e = ThreadLimitError { capacity: 3 };
        assert!(e.to_string().contains('3'));
    }
}
