//! # clean-sync
//!
//! Deterministic synchronization for CLEAN (Sections 2.4 and 3.3 of the
//! paper), implementing the Kendo weak-determinism algorithm: each thread
//! maintains a deterministic counter driven only by program progress, and
//! a synchronization operation is granted only to the thread whose counter
//! is the global minimum (tid-tie-broken). Because grant order depends on
//! counters and not on physical timing, the happens-before relation of a
//! race-free (or WAR-only-racy) program is the same in every execution —
//! which is what upgrades CLEAN's exception-free runs to full determinism.
//!
//! Provided primitives:
//!
//! * [`Kendo`] / [`DetHandle`] — the counter table and per-thread clock,
//! * [`DetMutex`] — deterministic lock with logically-timed release,
//! * [`DetRwLock`] — deterministic reader-writer lock,
//! * [`DetBarrier`] — deterministic cyclic barrier,
//! * [`DetCondvar`] — deterministic condition variable,
//! * [`ThreadRegistry`] — deterministic, reusable thread-id allocation,
//! * [`SchedHook`] — pluggable observer/driver of the Kendo logical
//!   clocks, used by the `clean-sched` controlled-scheduler explorer.
//!
//! All blocking operations spin (the paper's own implementation spins when
//! threads ≤ processors) and accept a `poll` callback invoked on every
//! iteration; the CLEAN runtime uses it to service deterministic
//! metadata-reset rendezvous (Section 4.5) without deadlock.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod barrier;
mod condvar;
mod kendo;
mod mutex;
mod registry;
mod rwlock;

pub use barrier::DetBarrier;
pub use condvar::DetCondvar;
pub use kendo::{Aborted, DetHandle, Kendo, SchedHook, EXCLUDED};
pub use mutex::{DetMutex, DetStamp};
pub use registry::{ThreadLimitError, ThreadRegistry};
pub use rwlock::DetRwLock;
