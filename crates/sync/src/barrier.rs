//! Deterministic barrier.
//!
//! Arrival order at a barrier does not affect its outcome, but the
//! deterministic counters of the participants must leave the barrier at a
//! deterministic value: every participant resumes at
//! `max(arrival counters) + 1`, which depends only on program progress.
//! While waiting, participants are excluded from turn arbitration so they
//! cannot stall other threads' turns.

use crate::kendo::{Aborted, DetHandle};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

#[derive(Debug)]
struct BarrierState {
    /// Arrival stamps (counter, tid) of the current generation.
    arrived: Vec<(u64, clean_core::ThreadId)>,
    /// Completed generations.
    generation: u64,
}

/// A deterministic cyclic barrier for a fixed set of participants.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use clean_core::ThreadId;
/// use clean_sync::{DetBarrier, Kendo};
///
/// let kendo = Arc::new(Kendo::new(2));
/// let b = Arc::new(DetBarrier::new(2));
/// let mut threads = Vec::new();
/// for t in 0..2u16 {
///     let mut h = kendo.register(ThreadId::new(t), u64::from(t)); // register before spawn
///     let b = Arc::clone(&b);
///     threads.push(std::thread::spawn(move || {
///         b.wait(&mut h, || false).unwrap();
///         h.counter()
///     }));
/// }
/// let counters: Vec<u64> = threads.into_iter().map(|t| t.join().unwrap()).collect();
/// assert_eq!(counters[0], counters[1], "deterministic release time");
/// ```
#[derive(Debug)]
pub struct DetBarrier {
    parties: usize,
    state: Mutex<BarrierState>,
    /// Release counter of the last completed generation.
    release_counter: AtomicU64,
    /// Generation counter mirrored atomically for spin-waiting.
    generation: AtomicU64,
}

impl DetBarrier {
    /// Creates a barrier for `parties` participants.
    ///
    /// # Panics
    ///
    /// Panics if `parties` is zero.
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "barrier needs at least one party");
        DetBarrier {
            parties,
            state: Mutex::new(BarrierState {
                arrived: Vec::with_capacity(parties),
                generation: 0,
            }),
            release_counter: AtomicU64::new(0),
            generation: AtomicU64::new(0),
        }
    }

    /// Number of participants.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Completed barrier episodes.
    pub fn generations(&self) -> u64 {
        self.generation.load(Ordering::SeqCst)
    }

    /// Waits at the barrier; returns `true` for exactly one participant
    /// per episode (the last arriver), mirroring
    /// `std::sync::Barrier::wait`'s leader flag.
    ///
    /// `poll` is invoked while spinning; the CLEAN runtime services
    /// metadata-reset rendezvous through it and observes shutdown
    /// (returning `true` aborts the wait).
    ///
    /// # Errors
    ///
    /// Returns [`Aborted`] when `poll` requests an abort; the thread's
    /// arrival is withdrawn so remaining participants are not corrupted
    /// (they will themselves abort, since an abort only happens on global
    /// shutdown).
    pub fn wait<F: FnMut() -> bool>(
        &self,
        handle: &mut DetHandle,
        mut poll: F,
    ) -> Result<bool, Aborted> {
        let my_generation;
        {
            let mut st = self.state.lock();
            my_generation = st.generation;
            st.arrived.push((handle.counter(), handle.tid()));
            if st.arrived.len() == self.parties {
                // Last arriver: compute the deterministic release time and
                // republish every excluded participant at it *before*
                // opening the barrier, so no other thread can overtake a
                // participant that has not yet noticed the release.
                let release = st.arrived.iter().map(|(c, _)| *c).max().unwrap_or(0) + 1;
                for (_, tid) in st.arrived.drain(..) {
                    if tid != handle.tid() {
                        handle.kendo().publish_on_behalf(tid, release);
                    }
                }
                st.generation += 1;
                self.release_counter.store(release, Ordering::SeqCst);
                self.generation.store(st.generation, Ordering::SeqCst);
                drop(st);
                handle.advance_to(release);
                return Ok(true);
            }
            // Not last: exclude from turn arbitration while blocked.
            handle.exclude();
        }
        while self.generation.load(Ordering::SeqCst) == my_generation {
            if poll() {
                // Withdraw the arrival (unless the episode completed
                // concurrently, in which case finish it normally).
                let mut st = self.state.lock();
                if st.generation != my_generation {
                    drop(st);
                    handle.include(self.release_counter.load(Ordering::SeqCst));
                    return Ok(false);
                }
                st.arrived.retain(|(_, t)| *t != handle.tid());
                drop(st);
                handle.include(handle.counter());
                return Err(Aborted);
            }
            std::hint::spin_loop();
            std::thread::yield_now();
        }
        handle.include(self.release_counter.load(Ordering::SeqCst));
        Ok(false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kendo::Kendo;
    use clean_core::ThreadId;
    use std::sync::Arc;

    #[test]
    fn all_resume_at_same_counter() {
        let k = Arc::new(Kendo::new(4));
        let b = Arc::new(DetBarrier::new(4));
        let mut joins = Vec::new();
        for t in 0..4u16 {
            let mut h = k.register(ThreadId::new(t), (t as u64) * 10);
            let b = Arc::clone(&b);
            joins.push(std::thread::spawn(move || {
                let leader = b.wait(&mut h, || false).unwrap();
                (leader, h.counter())
            }));
        }
        let results: Vec<(bool, u64)> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        let leaders = results.iter().filter(|(l, _)| *l).count();
        assert_eq!(leaders, 1, "exactly one leader");
        let release = results[0].1;
        assert_eq!(release, 31, "max(0,10,20,30)+1");
        assert!(results.iter().all(|(_, c)| *c == release));
        assert_eq!(b.generations(), 1);
    }

    #[test]
    fn barrier_is_cyclic() {
        let k = Arc::new(Kendo::new(2));
        let b = Arc::new(DetBarrier::new(2));
        let mut joins = Vec::new();
        for t in 0..2u16 {
            let mut h = k.register(ThreadId::new(t), 0);
            let b = Arc::clone(&b);
            joins.push(std::thread::spawn(move || {
                for _ in 0..50 {
                    b.wait(&mut h, || false).unwrap();
                    h.tick(1);
                }
                h.counter()
            }));
        }
        let finals: Vec<u64> = joins.into_iter().map(|j| j.join().unwrap()).collect();
        assert_eq!(finals[0], finals[1]);
        assert_eq!(b.generations(), 50);
    }

    #[test]
    fn single_party_barrier_is_immediate() {
        let k = Arc::new(Kendo::new(1));
        let mut h = k.register(ThreadId::new(0), 7);
        let b = DetBarrier::new(1);
        assert!(b.wait(&mut h, || false).unwrap());
        assert_eq!(h.counter(), 8);
    }

    #[test]
    #[should_panic]
    fn zero_parties_panics() {
        let _ = DetBarrier::new(0);
    }
}
