//! Deterministic mutual exclusion (Kendo `det_mutex_lock`, Section 2.4).
//!
//! A thread may acquire the lock only (i) on its deterministic turn and
//! (ii) if the lock is *logically* free at the thread's deterministic
//! time: physically unlocked **and** last released at a deterministic
//! timestamp smaller than the acquirer's. Condition (ii) closes the window
//! where a physically early release (by a thread that ran ahead) would be
//! visible to a logically earlier acquirer, which would make the acquire
//! order timing-dependent.
//!
//! On a failed attempt the thread increments its own counter and retries;
//! this lets the current holder (whose next operations carry larger
//! timestamps) obtain turns and eventually release.

use crate::kendo::{Aborted, DetHandle};
use clean_core::ThreadId;
use parking_lot::Mutex;

/// A deterministic timestamp: (deterministic counter, thread id),
/// lexicographically ordered — the same order `wait_for_turn` grants turns.
pub type DetStamp = (u64, ThreadId);

#[derive(Debug)]
struct MutexState {
    /// Holder of the lock, if any.
    owner: Option<ThreadId>,
    /// Deterministic time of the last release.
    last_release: Option<DetStamp>,
    /// Number of acquisitions (diagnostic).
    acquisitions: u64,
}

/// A deterministic mutex.
///
/// This primitive provides *ordering* determinism only; it stores no user
/// data and maintains no vector clock — the CLEAN runtime layers
/// happens-before propagation on top.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use clean_core::ThreadId;
/// use clean_sync::{DetMutex, Kendo};
///
/// let kendo = Arc::new(Kendo::new(2));
/// let mut h = kendo.register(ThreadId::new(0), 0);
/// let m = DetMutex::new();
/// m.lock(&mut h, || false).unwrap();
/// assert!(m.is_locked());
/// m.unlock(&mut h);
/// assert!(!m.is_locked());
/// ```
#[derive(Debug)]
pub struct DetMutex {
    state: Mutex<MutexState>,
}

impl DetMutex {
    /// Creates an unlocked deterministic mutex.
    pub fn new() -> Self {
        DetMutex {
            state: Mutex::new(MutexState {
                owner: None,
                last_release: None,
                acquisitions: 0,
            }),
        }
    }

    /// Returns true if the mutex is currently held.
    pub fn is_locked(&self) -> bool {
        self.state.lock().owner.is_some()
    }

    /// Current holder, if any.
    pub fn owner(&self) -> Option<ThreadId> {
        self.state.lock().owner
    }

    /// Total acquisitions performed (diagnostic; deterministic across
    /// runs under deterministic scheduling).
    pub fn acquisitions(&self) -> u64 {
        self.state.lock().acquisitions
    }

    /// Attempts a logically-timed acquire at deterministic time `stamp`.
    /// The caller must currently hold its deterministic turn.
    fn try_acquire(&self, stamp: DetStamp) -> bool {
        let mut st = self.state.lock();
        if st.owner.is_some() {
            return false;
        }
        if let Some(rel) = st.last_release {
            // Physically free, but released at a logically later time than
            // the acquirer: at the acquirer's deterministic time the lock
            // was still held, so the acquire must fail (determinism).
            if rel >= stamp {
                return false;
            }
        }
        st.owner = Some(stamp.1);
        st.acquisitions += 1;
        true
    }

    /// Acquires the mutex deterministically (Kendo `det_mutex_lock`).
    ///
    /// `poll` is forwarded to the turn wait and also invoked between
    /// attempts; the CLEAN runtime uses it to service metadata-reset
    /// rendezvous and to observe shutdown (returning `true` aborts).
    ///
    /// # Errors
    ///
    /// Returns [`Aborted`] when `poll` requests an abort; the mutex is
    /// *not* held in that case.
    pub fn lock<F: FnMut() -> bool>(
        &self,
        handle: &mut DetHandle,
        mut poll: F,
    ) -> Result<(), Aborted> {
        loop {
            handle.wait_for_turn(&mut poll)?;
            if self.try_acquire((handle.counter(), handle.tid())) {
                // Advance past the acquire so later operations of this
                // thread carry larger deterministic timestamps.
                handle.advance();
                return Ok(());
            }
            // Failed: let the holder make progress by moving our
            // deterministic time forward, then retry.
            handle.advance();
            if poll() {
                return Err(Aborted);
            }
        }
    }

    /// Releases the mutex, stamping the release with the releaser's
    /// deterministic time (Kendo `det_mutex_unlock`). No turn wait is
    /// needed: a release only ever *enables* logically later acquires.
    ///
    /// # Panics
    ///
    /// Panics if the calling handle does not own the mutex.
    pub fn unlock(&self, handle: &mut DetHandle) {
        {
            let mut st = self.state.lock();
            assert_eq!(
                st.owner,
                Some(handle.tid()),
                "unlock by non-owner {}",
                handle.tid()
            );
            st.owner = None;
            st.last_release = Some((handle.counter(), handle.tid()));
        }
        handle.advance();
    }
}

impl DetMutex {
    /// Releases the mutex on behalf of a handle that has already excluded
    /// itself from turn arbitration (the condition-variable wait path).
    /// Stamps the release with the handle's retained counter without
    /// republishing it, so the exclusion stays in effect.
    ///
    /// # Panics
    ///
    /// Panics if the calling handle does not own the mutex.
    pub(crate) fn unlock_excluded(&self, handle: &DetHandle) {
        let mut st = self.state.lock();
        assert_eq!(
            st.owner,
            Some(handle.tid()),
            "unlock by non-owner {}",
            handle.tid()
        );
        st.owner = None;
        st.last_release = Some((handle.counter(), handle.tid()));
    }
}

impl Default for DetMutex {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kendo::Kendo;
    use std::sync::Arc;

    #[test]
    fn lock_unlock_single_thread() {
        let k = Arc::new(Kendo::new(1));
        let mut h = k.register(ThreadId::new(0), 0);
        let m = DetMutex::new();
        m.lock(&mut h, || false).unwrap();
        assert!(m.is_locked());
        assert_eq!(m.owner(), Some(ThreadId::new(0)));
        m.unlock(&mut h);
        assert!(!m.is_locked());
        assert_eq!(m.acquisitions(), 1);
    }

    #[test]
    fn reacquire_after_release() {
        let k = Arc::new(Kendo::new(1));
        let mut h = k.register(ThreadId::new(0), 0);
        let m = DetMutex::new();
        for _ in 0..10 {
            m.lock(&mut h, || false).unwrap();
            m.unlock(&mut h);
        }
        assert_eq!(m.acquisitions(), 10);
    }

    #[test]
    #[should_panic]
    fn unlock_by_non_owner_panics() {
        let k = Arc::new(Kendo::new(2));
        let mut h0 = k.register(ThreadId::new(0), 0);
        let mut h1 = k.register(ThreadId::new(1), 0);
        let m = DetMutex::new();
        m.lock(&mut h0, || false).unwrap();
        m.unlock(&mut h1);
    }

    #[test]
    fn logically_late_release_blocks_early_acquirer() {
        // A release stamped at time 100 must not satisfy an acquire at
        // time 5 even though the lock is physically free.
        let m = DetMutex::new();
        assert!(m.try_acquire((100, ThreadId::new(1))));
        {
            let mut st = m.state.lock();
            st.owner = None;
            st.last_release = Some((100, ThreadId::new(1)));
        }
        assert!(!m.try_acquire((5, ThreadId::new(0))));
        assert!(m.try_acquire((101, ThreadId::new(0))));
    }

    #[test]
    fn acquisition_order_is_deterministic() {
        // Two threads, distinct initial counters: the lower counter must
        // acquire first in every run.
        for run in 0..20 {
            let k = Arc::new(Kendo::new(2));
            let order = Arc::new(Mutex::new(Vec::new()));
            let m = Arc::new(DetMutex::new());
            let mut handles = Vec::new();
            // Register ALL participants before any thread starts (the
            // CLEAN runtime registers children on deterministic spawn):
            // a late registration would let early threads win turns
            // against empty slots nondeterministically.
            let hs: Vec<_> = [(0u16, 5u64), (1u16, 3u64)]
                .into_iter()
                .map(|(tid, init)| (tid, k.register(ThreadId::new(tid), init)))
                .collect();
            for (tid, mut h) in hs {
                let m = Arc::clone(&m);
                let order = Arc::clone(&order);
                handles.push(std::thread::spawn(move || {
                    // Stagger physical start to try to flip the order.
                    if tid == 0 && run % 2 == 0 {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                    m.lock(&mut h, || false).unwrap();
                    order.lock().push(tid);
                    m.unlock(&mut h);
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            let o = order.lock().clone();
            assert_eq!(o, vec![1, 0], "run {run}: deterministic order violated");
        }
    }
}
