//! Deterministic condition variable.
//!
//! Waiters enqueue at their deterministic timestamp; `signal` wakes the
//! waiter with the *smallest* timestamp (the same order in every run),
//! and `broadcast` wakes all current waiters. For determinism, `signal`
//! and `broadcast` must be invoked while holding the mutex associated
//! with the wait — then the set of enqueued waiters observed by the
//! signal is fixed by the deterministic lock-acquisition order.
//!
//! Resumed waiters continue at the deterministic time `signaller + 1`
//! (or their retained time if larger), then deterministically re-acquire
//! the mutex.

use crate::kendo::{Aborted, DetHandle};
use crate::mutex::{DetMutex, DetStamp};
use clean_core::ThreadId;
use parking_lot::Mutex;
use std::collections::BTreeMap;

#[derive(Debug, Default)]
struct CondvarState {
    /// Waiters ordered by deterministic enqueue stamp.
    waiters: BTreeMap<DetStamp, ThreadId>,
    /// Woken threads and their deterministic resume counters.
    woken: BTreeMap<ThreadId, u64>,
    /// Total signals delivered (diagnostic).
    signals: u64,
}

/// A deterministic condition variable used with [`DetMutex`].
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use clean_core::ThreadId;
/// use clean_sync::{DetCondvar, DetMutex, Kendo};
///
/// let kendo = Arc::new(Kendo::new(2));
/// let m = Arc::new(DetMutex::new());
/// let cv = Arc::new(DetCondvar::new());
/// let mut waiter = kendo.register(ThreadId::new(0), 0);
/// let mut signaller = kendo.register(ThreadId::new(1), 0);
///
/// let (m2, cv2) = (Arc::clone(&m), Arc::clone(&cv));
/// let t = std::thread::spawn(move || {
///     m2.lock(&mut waiter, || false).unwrap();
///     cv2.wait(&m2, &mut waiter, || false).unwrap();
///     m2.unlock(&mut waiter);
/// });
/// // Signal until the waiter is released (covers the pre-enqueue window).
/// while !t.is_finished() {
///     m.lock(&mut signaller, || false).unwrap();
///     cv.signal(&mut signaller);
///     m.unlock(&mut signaller);
/// }
/// t.join().unwrap();
/// ```
#[derive(Debug, Default)]
pub struct DetCondvar {
    state: Mutex<CondvarState>,
}

impl DetCondvar {
    /// Creates a condition variable with no waiters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of threads currently enqueued.
    pub fn waiter_count(&self) -> usize {
        self.state.lock().waiters.len()
    }

    /// Total signals delivered so far.
    pub fn signals_delivered(&self) -> u64 {
        self.state.lock().signals
    }

    /// Atomically releases `mutex` and waits for a signal, then
    /// deterministically re-acquires `mutex` before returning.
    ///
    /// Standard condition-variable discipline applies: the caller must
    /// hold `mutex` and should re-check its predicate in a loop.
    ///
    /// `poll` is invoked while spinning (metadata-reset servicing);
    /// returning `true` from it aborts the wait.
    ///
    /// # Errors
    ///
    /// Returns [`Aborted`] when `poll` requests an abort. The mutex is
    /// **not** re-acquired in that case and the thread's wait ticket is
    /// withdrawn.
    ///
    /// # Panics
    ///
    /// Panics if the caller does not hold `mutex`.
    pub fn wait<F: FnMut() -> bool>(
        &self,
        mutex: &DetMutex,
        handle: &mut DetHandle,
        mut poll: F,
    ) -> Result<(), Aborted> {
        assert_eq!(
            mutex.owner(),
            Some(handle.tid()),
            "DetCondvar::wait requires holding the mutex"
        );
        let stamp = (handle.counter(), handle.tid());
        {
            let mut st = self.state.lock();
            st.waiters.insert(stamp, handle.tid());
            handle.exclude();
        }
        mutex.unlock_excluded(handle);
        // Spin until a signal names us.
        let resume = loop {
            {
                let mut st = self.state.lock();
                if let Some(resume) = st.woken.remove(&handle.tid()) {
                    break resume;
                }
            }
            if poll() {
                // Withdraw the ticket unless a signal raced with the abort.
                let mut st = self.state.lock();
                if let Some(resume) = st.woken.remove(&handle.tid()) {
                    drop(st);
                    handle.include(resume);
                    return mutex.lock(handle, poll);
                }
                st.waiters.remove(&stamp);
                drop(st);
                handle.include(handle.counter());
                return Err(Aborted);
            }
            std::hint::spin_loop();
            std::thread::yield_now();
        };
        handle.include(resume);
        mutex.lock(handle, poll)
    }

    /// Wakes the waiter with the smallest deterministic enqueue stamp, if
    /// any. Must be called while holding the associated mutex.
    pub fn signal(&self, handle: &mut DetHandle) {
        {
            let mut st = self.state.lock();
            if let Some((&stamp, &tid)) = st.waiters.iter().next() {
                let resume = handle.counter() + 1;
                st.waiters.remove(&stamp);
                st.woken.insert(tid, resume);
                st.signals += 1;
                // Make the woken thread visible to turn arbitration at its
                // resume time immediately (see Kendo::publish_on_behalf).
                handle.kendo().publish_on_behalf(tid, resume);
            }
        }
        handle.advance();
    }

    /// Wakes every current waiter. Must be called while holding the
    /// associated mutex.
    pub fn broadcast(&self, handle: &mut DetHandle) {
        {
            let mut st = self.state.lock();
            let resume = handle.counter() + 1;
            let waiters = std::mem::take(&mut st.waiters);
            st.signals += waiters.len() as u64;
            for (_, tid) in waiters {
                st.woken.insert(tid, resume);
                handle.kendo().publish_on_behalf(tid, resume);
            }
        }
        handle.advance();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kendo::Kendo;
    use std::sync::Arc;

    #[test]
    fn signal_wakes_lowest_stamp_first() {
        let k = Arc::new(Kendo::new(3));
        let m = Arc::new(DetMutex::new());
        let cv = Arc::new(DetCondvar::new());
        let order = Arc::new(Mutex::new(Vec::new()));

        let mut joins = Vec::new();
        // Two waiters with distinct deterministic enqueue times; register
        // all before spawning any (late registration is nondeterministic).
        let hs: Vec<_> = [(0u16, 20u64), (1u16, 10u64)]
            .into_iter()
            .map(|(tid, init)| (tid, k.register(ThreadId::new(tid), init)))
            .collect();
        for (tid, mut h) in hs {
            let (m, cv, order) = (Arc::clone(&m), Arc::clone(&cv), Arc::clone(&order));
            joins.push(std::thread::spawn(move || {
                m.lock(&mut h, || false).unwrap();
                cv.wait(&m, &mut h, || false).unwrap();
                order.lock().push(tid);
                m.unlock(&mut h);
            }));
        }
        // Wait until both are enqueued.
        while cv.waiter_count() < 2 {
            std::thread::yield_now();
        }
        let mut sig = k.register(ThreadId::new(2), 1000);
        for _ in 0..2 {
            m.lock(&mut sig, || false).unwrap();
            cv.signal(&mut sig);
            m.unlock(&mut sig);
        }
        // Exclude the signaller before blocking in join: a live slot with
        // a stale minimal counter would stall everyone's turns.
        drop(sig);
        for j in joins {
            j.join().unwrap();
        }
        // Thread 1 enqueued at stamp (10,1) < (20,0): wakes first.
        assert_eq!(order.lock().clone(), vec![1, 0]);
        assert_eq!(cv.signals_delivered(), 2);
    }

    #[test]
    fn broadcast_wakes_all() {
        let k = Arc::new(Kendo::new(4));
        let m = Arc::new(DetMutex::new());
        let cv = Arc::new(DetCondvar::new());
        let mut joins = Vec::new();
        let hs: Vec<_> = (0..3u16)
            .map(|tid| k.register(ThreadId::new(tid), u64::from(tid)))
            .collect();
        for mut h in hs {
            let (m, cv) = (Arc::clone(&m), Arc::clone(&cv));
            joins.push(std::thread::spawn(move || {
                m.lock(&mut h, || false).unwrap();
                cv.wait(&m, &mut h, || false).unwrap();
                m.unlock(&mut h);
                h.counter()
            }));
        }
        while cv.waiter_count() < 3 {
            std::thread::yield_now();
        }
        let mut sig = k.register(ThreadId::new(3), 500);
        m.lock(&mut sig, || false).unwrap();
        cv.broadcast(&mut sig);
        m.unlock(&mut sig);
        drop(sig); // see signal_wakes_lowest_stamp_first
        for j in joins {
            assert!(j.join().unwrap() > 500);
        }
        assert_eq!(cv.waiter_count(), 0);
    }

    #[test]
    fn signal_without_waiters_is_noop() {
        let k = Arc::new(Kendo::new(1));
        let mut h = k.register(ThreadId::new(0), 0);
        let cv = DetCondvar::new();
        cv.signal(&mut h);
        assert_eq!(cv.signals_delivered(), 0);
    }

    #[test]
    fn wait_aborts_when_poll_requests() {
        let k = Arc::new(Kendo::new(1));
        let mut h = k.register(ThreadId::new(0), 0);
        let m = DetMutex::new();
        let cv = DetCondvar::new();
        m.lock(&mut h, || false).unwrap();
        let res = cv.wait(&m, &mut h, || true);
        assert_eq!(res, Err(Aborted));
        assert_eq!(cv.waiter_count(), 0, "ticket withdrawn");
        assert!(!m.is_locked(), "mutex not re-acquired on abort");
    }

    #[test]
    #[should_panic]
    fn wait_without_mutex_panics() {
        let k = Arc::new(Kendo::new(1));
        let mut h = k.register(ThreadId::new(0), 0);
        let m = DetMutex::new();
        let cv = DetCondvar::new();
        let _ = cv.wait(&m, &mut h, || false);
    }
}
