//! Deterministic reader-writer lock.
//!
//! Extends the [`DetMutex`](crate::DetMutex) protocol to shared/exclusive
//! modes. Every acquisition happens on the acquirer's deterministic turn
//! and is gated on *logical* availability:
//!
//! * a **reader** may enter when no writer holds the lock and the last
//!   write release is logically earlier than the reader's timestamp;
//! * a **writer** may enter when nobody holds the lock and *every*
//!   release (read or write) is logically earlier than its timestamp.
//!
//! The same argument as for the deterministic mutex applies: a thread
//! only attempts an acquisition while globally minimal, at which point
//! any logically-earlier release has already physically happened (its
//! releaser's counter is ≥ the attempt time), so the outcome of each
//! attempt is a function of deterministic timestamps only.

use crate::kendo::{Aborted, DetHandle};
use crate::mutex::DetStamp;
use clean_core::ThreadId;
use parking_lot::Mutex;
use std::collections::BTreeSet;

#[derive(Debug, Default)]
struct RwState {
    writer: Option<ThreadId>,
    readers: BTreeSet<u16>,
    last_write_release: Option<DetStamp>,
    /// Maximum (lexicographic) release stamp over all read releases.
    last_read_release: Option<DetStamp>,
    write_acquisitions: u64,
    read_acquisitions: u64,
}

/// A deterministic reader-writer lock (ordering only; the CLEAN runtime
/// layers the two-clock happens-before model on top).
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use clean_core::ThreadId;
/// use clean_sync::{DetRwLock, Kendo};
///
/// let kendo = Arc::new(Kendo::new(2));
/// let mut a = kendo.register(ThreadId::new(0), 0);
/// let mut b = kendo.register(ThreadId::new(1), 0);
/// let l = DetRwLock::new();
/// l.read_lock(&mut a, || false).unwrap();
/// l.read_lock(&mut b, || false).unwrap(); // readers share
/// assert_eq!(l.reader_count(), 2);
/// l.read_unlock(&mut a);
/// l.read_unlock(&mut b);
/// l.write_lock(&mut a, || false).unwrap();
/// l.write_unlock(&mut a);
/// ```
#[derive(Debug, Default)]
pub struct DetRwLock {
    state: Mutex<RwState>,
}

impl DetRwLock {
    /// Creates an unlocked reader-writer lock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of current readers.
    pub fn reader_count(&self) -> usize {
        self.state.lock().readers.len()
    }

    /// Current writer, if any.
    pub fn writer(&self) -> Option<ThreadId> {
        self.state.lock().writer
    }

    /// (read, write) acquisition counts (diagnostic).
    pub fn acquisitions(&self) -> (u64, u64) {
        let st = self.state.lock();
        (st.read_acquisitions, st.write_acquisitions)
    }

    fn try_read(&self, stamp: DetStamp) -> bool {
        let mut st = self.state.lock();
        if st.writer.is_some() {
            return false;
        }
        if let Some(rel) = st.last_write_release {
            if rel >= stamp {
                return false; // the write logically still holds at `stamp`
            }
        }
        st.readers.insert(stamp.1.raw());
        st.read_acquisitions += 1;
        true
    }

    fn try_write(&self, stamp: DetStamp) -> bool {
        let mut st = self.state.lock();
        if st.writer.is_some() || !st.readers.is_empty() {
            return false;
        }
        for rel in [st.last_write_release, st.last_read_release]
            .into_iter()
            .flatten()
        {
            if rel >= stamp {
                return false;
            }
        }
        st.writer = Some(stamp.1);
        st.write_acquisitions += 1;
        true
    }

    /// Acquires the lock in shared (read) mode on the caller's turn.
    ///
    /// # Errors
    ///
    /// Returns [`Aborted`] when `poll` requests an abort.
    pub fn read_lock<F: FnMut() -> bool>(
        &self,
        handle: &mut DetHandle,
        mut poll: F,
    ) -> Result<(), Aborted> {
        loop {
            handle.wait_for_turn(&mut poll)?;
            if self.try_read((handle.counter(), handle.tid())) {
                handle.advance();
                return Ok(());
            }
            handle.advance();
            if poll() {
                return Err(Aborted);
            }
        }
    }

    /// Releases a shared hold, stamping the read release.
    ///
    /// # Panics
    ///
    /// Panics if the caller does not hold a read lock.
    pub fn read_unlock(&self, handle: &mut DetHandle) {
        {
            let mut st = self.state.lock();
            assert!(
                st.readers.remove(&handle.tid().raw()),
                "read_unlock by non-reader {}",
                handle.tid()
            );
            let stamp = (handle.counter(), handle.tid());
            if st.last_read_release.is_none_or(|r| r < stamp) {
                st.last_read_release = Some(stamp);
            }
        }
        handle.advance();
    }

    /// Acquires the lock in exclusive (write) mode on the caller's turn.
    ///
    /// # Errors
    ///
    /// Returns [`Aborted`] when `poll` requests an abort.
    pub fn write_lock<F: FnMut() -> bool>(
        &self,
        handle: &mut DetHandle,
        mut poll: F,
    ) -> Result<(), Aborted> {
        loop {
            handle.wait_for_turn(&mut poll)?;
            if self.try_write((handle.counter(), handle.tid())) {
                handle.advance();
                return Ok(());
            }
            handle.advance();
            if poll() {
                return Err(Aborted);
            }
        }
    }

    /// Atomically converts the exclusive hold into a shared one: the
    /// write release is stamped (so logically-earlier writers stay
    /// ordered behind it) and the caller becomes a reader without any
    /// window in which another writer could acquire the lock.
    ///
    /// # Panics
    ///
    /// Panics if the caller does not hold the write lock.
    pub fn downgrade(&self, handle: &mut DetHandle) {
        {
            let mut st = self.state.lock();
            assert_eq!(
                st.writer,
                Some(handle.tid()),
                "downgrade by non-writer {}",
                handle.tid()
            );
            st.writer = None;
            st.last_write_release = Some((handle.counter(), handle.tid()));
            st.readers.insert(handle.tid().raw());
            st.read_acquisitions += 1;
        }
        handle.advance();
    }

    /// Releases the exclusive hold, stamping the write release.
    ///
    /// # Panics
    ///
    /// Panics if the caller does not hold the write lock.
    pub fn write_unlock(&self, handle: &mut DetHandle) {
        {
            let mut st = self.state.lock();
            assert_eq!(
                st.writer,
                Some(handle.tid()),
                "write_unlock by non-writer {}",
                handle.tid()
            );
            st.writer = None;
            st.last_write_release = Some((handle.counter(), handle.tid()));
        }
        handle.advance();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kendo::Kendo;
    use std::sync::Arc;

    #[test]
    fn readers_share_writers_exclude() {
        let k = Arc::new(Kendo::new(3));
        let mut a = k.register(ThreadId::new(0), 0);
        let mut b = k.register(ThreadId::new(1), 0);
        let l = DetRwLock::new();
        l.read_lock(&mut a, || false).unwrap();
        l.read_lock(&mut b, || false).unwrap();
        assert_eq!(l.reader_count(), 2);
        assert!(
            !l.try_write((100, ThreadId::new(2))),
            "readers block writers"
        );
        l.read_unlock(&mut a);
        l.read_unlock(&mut b);
        l.write_lock(&mut a, || false).unwrap();
        assert_eq!(l.writer(), Some(ThreadId::new(0)));
        assert!(
            !l.try_read((100, ThreadId::new(1))),
            "writer blocks readers"
        );
        l.write_unlock(&mut a);
        assert_eq!(l.acquisitions(), (2, 1));
    }

    #[test]
    fn logically_late_write_release_blocks_early_reader() {
        let l = DetRwLock::new();
        assert!(l.try_write((50, ThreadId::new(1))));
        {
            let mut st = l.state.lock();
            st.writer = None;
            st.last_write_release = Some((50, ThreadId::new(1)));
        }
        assert!(
            !l.try_read((10, ThreadId::new(0))),
            "write at 50 covers t=10"
        );
        assert!(l.try_read((51, ThreadId::new(0))));
    }

    #[test]
    fn logically_late_read_release_blocks_early_writer_only() {
        let l = DetRwLock::new();
        assert!(l.try_read((40, ThreadId::new(0))));
        {
            let mut st = l.state.lock();
            st.readers.clear();
            st.last_read_release = Some((40, ThreadId::new(0)));
        }
        // A writer at t=10 must not pass the read that logically spans it...
        assert!(!l.try_write((10, ThreadId::new(1))));
        // ...but another reader may (readers never exclude readers).
        assert!(l.try_read((10, ThreadId::new(1))));
        assert!({
            let mut st = l.state.lock();
            st.readers.clear();
            true
        });
        assert!(l.try_write((41, ThreadId::new(1))));
    }

    #[test]
    fn downgrade_holds_shared_without_writer_window() {
        let k = Arc::new(Kendo::new(3));
        let mut a = k.register(ThreadId::new(0), 0);
        let l = DetRwLock::new();
        l.write_lock(&mut a, || false).unwrap();
        l.downgrade(&mut a);
        assert_eq!(l.writer(), None);
        assert_eq!(l.reader_count(), 1, "downgrader keeps a shared hold");
        // Other readers may share immediately; writers are excluded both
        // by the live reader and by the downgrade's release stamp.
        assert!(l.try_read((100, ThreadId::new(1))));
        assert!(!l.try_write((100, ThreadId::new(2))));
        {
            let mut st = l.state.lock();
            st.readers.remove(&1);
        }
        l.read_unlock(&mut a);
        assert_eq!(l.reader_count(), 0);
        // Logically after both releases, a writer gets in.
        assert!(l.try_write((1000, ThreadId::new(2))));
        let (reads, writes) = l.acquisitions();
        assert_eq!(
            (reads, writes),
            (2, 2),
            "downgrade counts as a read acquire"
        );
    }

    #[test]
    #[should_panic]
    fn downgrade_by_non_writer_panics() {
        let k = Arc::new(Kendo::new(2));
        let mut a = k.register(ThreadId::new(0), 0);
        let l = DetRwLock::new();
        l.read_lock(&mut a, || false).unwrap();
        l.downgrade(&mut a);
    }

    #[test]
    #[should_panic]
    fn read_unlock_without_hold_panics() {
        let k = Arc::new(Kendo::new(1));
        let mut h = k.register(ThreadId::new(0), 0);
        let l = DetRwLock::new();
        l.read_unlock(&mut h);
    }

    #[test]
    #[should_panic]
    fn write_unlock_by_non_writer_panics() {
        let k = Arc::new(Kendo::new(2));
        let mut a = k.register(ThreadId::new(0), 0);
        let mut b = k.register(ThreadId::new(1), 0);
        let l = DetRwLock::new();
        l.write_lock(&mut a, || false).unwrap();
        l.write_unlock(&mut b);
    }

    #[test]
    fn writer_waits_for_reader_deterministically() {
        for _ in 0..10 {
            let k = Arc::new(Kendo::new(2));
            let mut r = k.register(ThreadId::new(0), 0);
            let mut w = k.register(ThreadId::new(1), 5);
            let l = Arc::new(DetRwLock::new());
            let l2 = Arc::clone(&l);
            let reader = std::thread::spawn(move || {
                l2.read_lock(&mut r, || false).unwrap();
                r.tick(20); // hold across the writer's attempts
                l2.read_unlock(&mut r);
                r.counter()
            });
            l.write_lock(&mut w, || false).unwrap();
            l.write_unlock(&mut w);
            let final_reader = reader.join().unwrap();
            // Reader acquired at t=0 (turn before the writer's 5); writer
            // must have entered only after the read release.
            assert!(w.counter() > final_reader - 1);
        }
    }
}
