//! Property-based tests of the cache model against a reference
//! implementation, and of memory-system invariants.

use clean_sim::{Cache, CacheConfig, Latencies, MemorySystem, LINE_SIZE};
use proptest::prelude::*;
use std::collections::VecDeque;

/// A straightforward reference LRU cache.
#[derive(Debug, Clone)]
struct ModelCache {
    assoc: usize,
    sets: Vec<VecDeque<u64>>,
}

impl ModelCache {
    fn new(cfg: CacheConfig) -> Self {
        ModelCache {
            assoc: cfg.assoc,
            sets: vec![VecDeque::new(); cfg.sets()],
        }
    }

    fn set_of(&self, line: u64) -> usize {
        ((line / LINE_SIZE) % self.sets.len() as u64) as usize
    }

    fn access(&mut self, line: u64) -> bool {
        let s = self.set_of(line);
        if let Some(pos) = self.sets[s].iter().position(|&l| l == line) {
            let l = self.sets[s].remove(pos).unwrap();
            self.sets[s].push_back(l);
            true
        } else {
            false
        }
    }

    fn insert(&mut self, line: u64) -> Option<u64> {
        let s = self.set_of(line);
        if let Some(pos) = self.sets[s].iter().position(|&l| l == line) {
            let l = self.sets[s].remove(pos).unwrap();
            self.sets[s].push_back(l);
            return None;
        }
        let evicted = if self.sets[s].len() == self.assoc {
            self.sets[s].pop_front()
        } else {
            None
        };
        self.sets[s].push_back(line);
        evicted
    }

    fn invalidate(&mut self, line: u64) -> bool {
        let s = self.set_of(line);
        if let Some(pos) = self.sets[s].iter().position(|&l| l == line) {
            self.sets[s].remove(pos);
            true
        } else {
            false
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Access(u64),
    Insert(u64),
    Invalidate(u64),
}

fn arb_op() -> impl Strategy<Value = Op> {
    // 16 lines over a tiny cache: plenty of conflict pressure.
    let line = (0u64..16).prop_map(|l| l * LINE_SIZE);
    prop_oneof![
        line.clone().prop_map(Op::Access),
        line.clone().prop_map(Op::Insert),
        line.prop_map(Op::Invalidate),
    ]
}

proptest! {
    #[test]
    fn cache_matches_reference_model(ops in proptest::collection::vec(arb_op(), 1..200)) {
        let cfg = CacheConfig { size: 4 * LINE_SIZE as usize, assoc: 2 };
        let mut cache = Cache::new(cfg);
        let mut model = ModelCache::new(cfg);
        for op in ops {
            match op {
                Op::Access(l) => prop_assert_eq!(cache.access(l), model.access(l)),
                Op::Insert(l) => prop_assert_eq!(cache.insert(l), model.insert(l)),
                Op::Invalidate(l) => prop_assert_eq!(cache.invalidate(l), model.invalidate(l)),
            }
            prop_assert_eq!(
                cache.resident(),
                model.sets.iter().map(|s| s.len()).sum::<usize>()
            );
        }
    }

    #[test]
    fn latency_matches_hit_level(
        accesses in proptest::collection::vec((0usize..2, 0u64..64, prop::bool::ANY), 1..150),
    ) {
        let lat = Latencies::paper();
        let mut m = MemorySystem::new(2, lat);
        for (core, line_idx, write) in accesses {
            let (latency, level) = m.access_line(core, line_idx * LINE_SIZE, write);
            let expected = match level {
                clean_sim::HitLevel::L1 => lat.l1,
                clean_sim::HitLevel::L2Local => lat.l2_local,
                clean_sim::HitLevel::L2Remote => lat.l2_remote,
                clean_sim::HitLevel::L3 => lat.l3,
                clean_sim::HitLevel::Memory => lat.memory,
            };
            prop_assert_eq!(latency, expected);
            // Immediately re-reading always hits L1 (the fill is complete).
            let (relat, relevel) = m.access_line(core, line_idx * LINE_SIZE, false);
            prop_assert_eq!(relevel, clean_sim::HitLevel::L1);
            prop_assert_eq!(relat, lat.l1);
        }
    }

    #[test]
    fn writes_make_other_cores_miss_l1(
        lines in proptest::collection::vec(0u64..32, 1..60),
    ) {
        let mut m = MemorySystem::new(2, Latencies::paper());
        for l in lines {
            let line = l * LINE_SIZE;
            m.access_line(0, line, false);
            m.access_line(1, line, true); // invalidates core 0
            let (_, level) = m.access_line(0, line, false);
            prop_assert_ne!(level, clean_sim::HitLevel::Memory,
                "line is somewhere in the hierarchy");
            // Core 0 cannot L1-hit right after an invalidation; it refills.
            let (_, level2) = m.access_line(0, line, false);
            prop_assert_eq!(level2, clean_sim::HitLevel::L1);
            let _ = level;
        }
    }
}
