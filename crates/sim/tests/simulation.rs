//! Integration tests of the simulator: determinism, latency accounting,
//! metadata-mode orderings, and fast-path behaviour on structured traces.

use clean_sim::{
    EpochMode, Latencies, Machine, MachineConfig, MemorySystem, ProgramTrace, SimEvent,
};

fn phased_trace(threads: usize, lines_per_thread: u64, phases: u64) -> ProgramTrace {
    let mut p = ProgramTrace::with_threads(threads);
    for phase in 0..phases {
        for (t, th) in p.threads.iter_mut().enumerate() {
            // Rotate partitions so cross-thread reuse happens every phase.
            let part = ((t as u64 + phase) % threads as u64) * lines_per_thread;
            for i in 0..lines_per_thread {
                th.push(SimEvent::Compute(3));
                th.push(SimEvent::Write {
                    addr: (part + i) * 64,
                    size: 8,
                    private: false,
                });
                th.push(SimEvent::Read {
                    addr: (part + i) * 64 + 8,
                    size: 8,
                    private: false,
                });
            }
            th.push(SimEvent::Sync);
        }
    }
    p
}

#[test]
fn simulation_is_deterministic() {
    let p = phased_trace(4, 50, 6);
    let r1 = Machine::new(MachineConfig::with_detection(EpochMode::CleanCompact)).run(&p);
    let r2 = Machine::new(MachineConfig::with_detection(EpochMode::CleanCompact)).run(&p);
    assert_eq!(r1.cycles, r2.cycles);
    assert_eq!(r1.per_core, r2.per_core);
    assert_eq!(r1.hw.unwrap(), r2.hw.unwrap());
}

#[test]
fn rotated_sharing_is_race_free_and_uses_vc_loads() {
    let p = phased_trace(4, 40, 5);
    let r = Machine::new(MachineConfig::with_detection(EpochMode::CleanCompact)).run(&p);
    let hw = r.hw.unwrap();
    assert_eq!(hw.races, 0, "barrier-rotated sharing is ordered");
    assert!(
        hw.vc_load + hw.vc_load_update > 0,
        "cross-thread reuse must defeat the sameThread fast path: {hw:?}"
    );
    assert!(hw.fast > 0, "thread-affine re-accesses take the fast path");
}

#[test]
fn detection_slowdown_ordering_across_modes() {
    // On a word-granular workload: baseline <= 1B <= CLEAN <= 4B.
    let p = phased_trace(4, 120, 6);
    let base = Machine::new(MachineConfig::baseline()).run(&p).cycles;
    let m1 = Machine::new(MachineConfig::with_detection(EpochMode::Fixed1B))
        .run(&p)
        .cycles;
    let mc = Machine::new(MachineConfig::with_detection(EpochMode::CleanCompact))
        .run(&p)
        .cycles;
    let m4 = Machine::new(MachineConfig::with_detection(EpochMode::Fixed4B))
        .run(&p)
        .cycles;
    assert!(base <= m1, "detection cannot speed things up");
    assert!(
        m1 <= mc + mc / 10,
        "1B epochs ~upper-bound CLEAN ({m1} vs {mc})"
    );
    assert!(
        mc <= m4,
        "compaction must not lose to 4B epochs ({mc} vs {m4})"
    );
}

#[test]
fn byte_granular_writes_expand_and_slow_down() {
    // dedup-style: threads write single bytes at varying offsets of lines
    // previously written (whole-word) by other threads.
    let mut p = ProgramTrace::with_threads(2);
    for (t, th) in p.threads.iter_mut().enumerate() {
        for i in 0..200u64 {
            th.push(SimEvent::Write {
                addr: ((t as u64) * 200 + i) * 64,
                size: 8,
                private: false,
            });
        }
        th.push(SimEvent::Sync);
    }
    // Phase 2: byte writes into the OTHER thread's lines.
    for (t, th) in p.threads.iter_mut().enumerate() {
        let other = 1 - t;
        for i in 0..200u64 {
            th.push(SimEvent::Write {
                addr: ((other as u64) * 200 + i) * 64 + 3,
                size: 1,
                private: false,
            });
        }
        th.push(SimEvent::Sync);
    }
    let r = Machine::new(MachineConfig::with_detection(EpochMode::CleanCompact)).run(&p);
    let hw = r.hw.unwrap();
    assert_eq!(hw.races, 0);
    assert!(
        hw.expand >= 200,
        "byte writes by another thread expand: {hw:?}"
    );
    assert!(hw.expanded_accesses > 0);
}

#[test]
fn private_heavy_trace_is_nearly_free() {
    let mut p = ProgramTrace::with_threads(2);
    for th in p.threads.iter_mut() {
        for i in 0..2000u64 {
            th.push(SimEvent::Read {
                addr: (1 << 36) + (i % 64) * 8,
                size: 8,
                private: true,
            });
        }
    }
    let base = Machine::new(MachineConfig::baseline()).run(&p).cycles;
    let det = Machine::new(MachineConfig::with_detection(EpochMode::CleanCompact))
        .run(&p)
        .cycles;
    assert_eq!(base, det, "private accesses need no checks");
}

#[test]
fn memory_system_shared_l3_serves_both_cores() {
    let mut m = MemorySystem::new(2, Latencies::paper());
    // Core 0 brings a line in, then thrashes its private caches.
    m.access_line(0, 0, false);
    for i in 1..6000u64 {
        m.access_line(0, i * 64, false);
    }
    // Core 1 never touched the line: with core 0's private copies evicted
    // the hit comes from L3 at 35 cycles.
    let (lat, _) = m.access_line(1, 0, false);
    assert!(lat == 35 || lat == 15, "L3 or remote hit, got {lat}");
}

#[test]
fn unbalanced_threads_finish_at_their_own_pace() {
    let mut p = ProgramTrace::with_threads(3);
    p.threads[0].push(SimEvent::Compute(10));
    p.threads[1].push(SimEvent::Compute(1000));
    p.threads[2].push(SimEvent::Compute(100));
    let r = Machine::new(MachineConfig::baseline()).run(&p);
    assert_eq!(r.per_core[0], 10);
    assert_eq!(r.per_core[1], 1000);
    assert_eq!(r.per_core[2], 100);
    assert_eq!(r.cycles, 1000);
}
