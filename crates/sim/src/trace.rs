//! Simulator traces: per-thread event streams consumed by the
//! [`Machine`](crate::Machine), mirroring the paper's Pin-generated traces
//! (Section 6.3.1). Shared accesses are "approximated by Pin as non-stack
//! accesses"; here each event carries an explicit `private` flag with the
//! same meaning.

/// One instruction-stream event of a simulated thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimEvent {
    /// `n` cycles of non-memory instructions (1 cycle each on the paper's
    /// simple cores).
    Compute(u32),
    /// A load of `size` bytes at `addr`. `private` marks stack accesses
    /// that need no race check.
    Read {
        /// Byte address.
        addr: u64,
        /// Access width in bytes (1–8).
        size: u8,
        /// Stack (race-check-free) access.
        private: bool,
    },
    /// A store of `size` bytes at `addr`.
    Write {
        /// Byte address.
        addr: u64,
        /// Access width in bytes (1–8).
        size: u8,
        /// Stack (race-check-free) access.
        private: bool,
    },
    /// A synchronization operation (lock, barrier episode, …): costs 100
    /// extra cycles under detection for software vector-clock maintenance
    /// (Section 6.3.1) and transfers happens-before.
    Sync,
}

/// The event stream of one simulated thread.
#[derive(Debug, Clone, Default)]
pub struct ThreadTrace {
    /// Events in program order.
    pub events: Vec<SimEvent>,
}

impl ThreadTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn push(&mut self, e: SimEvent) {
        self.events.push(e);
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Returns true if the trace has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Total instruction count (computes expand to their cycle count).
    pub fn instructions(&self) -> u64 {
        self.events
            .iter()
            .map(|e| match e {
                SimEvent::Compute(n) => u64::from(*n),
                _ => 1,
            })
            .sum()
    }

    /// Number of shared (non-private) memory accesses.
    pub fn shared_accesses(&self) -> u64 {
        self.events
            .iter()
            .filter(|e| {
                matches!(
                    e,
                    SimEvent::Read { private: false, .. } | SimEvent::Write { private: false, .. }
                )
            })
            .count() as u64
    }
}

/// A whole program: one trace per core/thread.
#[derive(Debug, Clone, Default)]
pub struct ProgramTrace {
    /// Per-thread traces; index = core = thread id.
    pub threads: Vec<ThreadTrace>,
}

impl ProgramTrace {
    /// Creates a program with `n` empty threads.
    pub fn with_threads(n: usize) -> Self {
        ProgramTrace {
            threads: vec![ThreadTrace::new(); n],
        }
    }

    /// Number of threads.
    pub fn num_threads(&self) -> usize {
        self.threads.len()
    }

    /// Total shared accesses across threads.
    pub fn shared_accesses(&self) -> u64 {
        self.threads.iter().map(|t| t.shared_accesses()).sum()
    }

    /// Total instructions across threads.
    pub fn instructions(&self) -> u64 {
        self.threads.iter().map(|t| t.instructions()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_counters() {
        let mut t = ThreadTrace::new();
        assert!(t.is_empty());
        t.push(SimEvent::Compute(10));
        t.push(SimEvent::Read {
            addr: 0,
            size: 4,
            private: false,
        });
        t.push(SimEvent::Write {
            addr: 64,
            size: 8,
            private: true,
        });
        t.push(SimEvent::Sync);
        assert_eq!(t.len(), 4);
        assert_eq!(t.instructions(), 13);
        assert_eq!(t.shared_accesses(), 1);
    }

    #[test]
    fn program_aggregates() {
        let mut p = ProgramTrace::with_threads(2);
        p.threads[0].push(SimEvent::Read {
            addr: 0,
            size: 4,
            private: false,
        });
        p.threads[1].push(SimEvent::Write {
            addr: 0,
            size: 4,
            private: false,
        });
        assert_eq!(p.num_threads(), 2);
        assert_eq!(p.shared_accesses(), 2);
    }
}
