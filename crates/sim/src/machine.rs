//! The simulated multiprocessor (Section 6.3.1): simple in-order cores
//! (fixed 1-cycle non-memory instructions), a realistic 3-level memory
//! hierarchy, and optionally the CLEAN hardware race-check unit running in
//! parallel with every shared access.

use crate::hwclean::{EpochMode, HwClean, HwStats};
use crate::mem::{HierarchyConfig, Latencies, MemStats, MemorySystem};
use crate::trace::{ProgramTrace, SimEvent};

/// Machine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineConfig {
    /// Number of cores (the paper models 8).
    pub cores: usize,
    /// Memory latencies.
    pub latencies: Latencies,
    /// Cache geometry (paper defaults; shrink the L3 for the
    /// cache-sensitivity ablation).
    pub hierarchy: HierarchyConfig,
    /// Hardware race detection, if enabled, with its metadata mode.
    pub detection: Option<EpochMode>,
    /// Extra cycles per synchronization operation when detection is on
    /// (software vector-clock maintenance; 100 in the paper).
    pub sync_overhead: u32,
}

impl MachineConfig {
    /// The paper's 8-core machine without race detection (the
    /// normalization baseline of Figure 9).
    pub fn baseline() -> Self {
        MachineConfig {
            cores: 8,
            latencies: Latencies::paper(),
            hierarchy: HierarchyConfig::paper(),
            detection: None,
            sync_overhead: 100,
        }
    }

    /// The paper's machine with CLEAN hardware detection.
    pub fn with_detection(mode: EpochMode) -> Self {
        MachineConfig {
            detection: Some(mode),
            ..Self::baseline()
        }
    }
}

/// Result of simulating one program.
#[derive(Debug, Clone)]
pub struct MachineResult {
    /// Execution time: the maximum core cycle count.
    pub cycles: u64,
    /// Per-core cycle counts.
    pub per_core: Vec<u64>,
    /// Memory-system statistics.
    pub mem: MemStats,
    /// Check-unit statistics (when detection was enabled).
    pub hw: Option<HwStats>,
}

/// The trace-driven multicore simulator.
#[derive(Debug)]
pub struct Machine {
    config: MachineConfig,
    mem: MemorySystem,
    hw: Option<HwClean>,
    cycles: Vec<u64>,
    waiting: Vec<bool>,
}

impl Machine {
    /// Builds a machine.
    pub fn new(config: MachineConfig) -> Self {
        Machine {
            mem: MemorySystem::with_hierarchy(config.cores, config.latencies, config.hierarchy),
            hw: config.detection.map(|m| HwClean::new(config.cores, m)),
            cycles: vec![0; config.cores],
            waiting: vec![false; config.cores],
            config,
        }
    }

    /// The machine configuration.
    pub fn config(&self) -> MachineConfig {
        self.config
    }

    /// Runs a program to completion and returns the result.
    ///
    /// Cores are interleaved in cycle order (the core with the smallest
    /// local clock executes its next event), which deterministically
    /// approximates concurrent execution.
    ///
    /// # Panics
    ///
    /// Panics if the program has more threads than the machine has cores.
    pub fn run(&mut self, program: &ProgramTrace) -> MachineResult {
        assert!(
            program.num_threads() <= self.config.cores,
            "{} threads exceed {} cores",
            program.num_threads(),
            self.config.cores
        );
        let mut pc = vec![0usize; program.num_threads()];
        loop {
            // Pick the runnable core with the smallest local clock.
            let next = (0..program.num_threads())
                .filter(|&c| pc[c] < program.threads[c].events.len() && !self.waiting[c])
                .min_by_key(|&c| (self.cycles[c], c));
            match next {
                Some(core) => {
                    let event = program.threads[core].events[pc[core]];
                    pc[core] += 1;
                    self.step(core, event);
                }
                None => {
                    // No runnable core: either done or a barrier episode
                    // completes (every unfinished core is waiting).
                    if !self.waiting.iter().any(|w| *w) {
                        break;
                    }
                    self.release_barrier();
                }
            }
        }
        MachineResult {
            cycles: self.cycles.iter().copied().max().unwrap_or(0),
            per_core: self.cycles.clone(),
            mem: self.mem.stats(),
            hw: self.hw.as_ref().map(|h| h.stats()),
        }
    }

    fn step(&mut self, core: usize, event: SimEvent) {
        match event {
            SimEvent::Compute(n) => {
                self.cycles[core] += u64::from(n);
            }
            SimEvent::Read {
                addr,
                size,
                private,
            } => self.mem_access(core, addr, size, false, private),
            SimEvent::Write {
                addr,
                size,
                private,
            } => self.mem_access(core, addr, size, true, private),
            SimEvent::Sync => {
                // Arrive at the global barrier; the core blocks until all
                // unfinished cores arrive (see release_barrier).
                self.waiting[core] = true;
            }
        }
    }

    /// Completes a barrier episode: all waiting cores resume at the
    /// latest arrival time plus the synchronization cost (20 cycles base;
    /// +`sync_overhead` for software vector-clock maintenance when
    /// detection is on — Section 6.3.1).
    fn release_barrier(&mut self) {
        let release = self
            .waiting
            .iter()
            .zip(&self.cycles)
            .filter(|(w, _)| **w)
            .map(|(_, c)| *c)
            .max()
            .unwrap_or(0);
        let cost = 20
            + if self.hw.is_some() {
                u64::from(self.config.sync_overhead)
            } else {
                0
            };
        if let Some(hw) = self.hw.as_mut() {
            hw.on_barrier();
        }
        for c in 0..self.config.cores {
            if self.waiting[c] {
                self.waiting[c] = false;
                self.cycles[c] = release + cost;
            }
        }
    }

    fn mem_access(&mut self, core: usize, addr: u64, size: u8, write: bool, private: bool) {
        let size = size.max(1);
        let data_latency = self.mem.access(core, addr, size, write);
        let total = match self.hw.as_mut() {
            Some(hw) if !private => {
                // The check proceeds in parallel with the data access;
                // only the excess is exposed (Section 5.4).
                let check_latency = hw.check(&mut self.mem, core, addr, size, write);
                let exposed = check_latency.saturating_sub(data_latency);
                hw.note_exposed(exposed);
                data_latency + exposed
            }
            Some(hw) => {
                hw.note_private();
                data_latency
            }
            None => data_latency,
        };
        self.cycles[core] += u64::from(total);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_trace(n_access: usize, stride: u64, size: u8) -> ProgramTrace {
        let mut p = ProgramTrace::with_threads(1);
        for i in 0..n_access {
            p.threads[0].push(SimEvent::Compute(2));
            p.threads[0].push(SimEvent::Write {
                addr: i as u64 * stride,
                size,
                private: false,
            });
        }
        p
    }

    #[test]
    fn empty_program_takes_no_cycles() {
        let mut m = Machine::new(MachineConfig::baseline());
        let r = m.run(&ProgramTrace::with_threads(2));
        assert_eq!(r.cycles, 0);
    }

    #[test]
    fn compute_only_counts_cycles() {
        let mut m = Machine::new(MachineConfig::baseline());
        let mut p = ProgramTrace::with_threads(2);
        p.threads[0].push(SimEvent::Compute(100));
        p.threads[1].push(SimEvent::Compute(250));
        let r = m.run(&p);
        assert_eq!(r.per_core[0], 100);
        assert_eq!(r.per_core[1], 250);
        assert_eq!(r.cycles, 250);
    }

    #[test]
    fn detection_adds_overhead() {
        let p = seq_trace(2000, 8, 8);
        let base = Machine::new(MachineConfig::baseline()).run(&p);
        let det = Machine::new(MachineConfig::with_detection(EpochMode::CleanCompact)).run(&p);
        assert!(det.cycles >= base.cycles);
        let hw = det.hw.unwrap();
        assert_eq!(hw.total(), 2000);
        assert_eq!(hw.races, 0, "single-thread traces are race-free");
    }

    #[test]
    fn private_accesses_skip_checks() {
        let mut p = ProgramTrace::with_threads(1);
        for i in 0..100 {
            p.threads[0].push(SimEvent::Read {
                addr: i * 4,
                size: 4,
                private: true,
            });
        }
        let r = Machine::new(MachineConfig::with_detection(EpochMode::CleanCompact)).run(&p);
        let hw = r.hw.unwrap();
        assert_eq!(hw.private, 100);
        assert_eq!(hw.checked(), 0);
    }

    #[test]
    fn sync_costs_more_under_detection() {
        let mut p = ProgramTrace::with_threads(1);
        for _ in 0..10 {
            p.threads[0].push(SimEvent::Sync);
        }
        let base = Machine::new(MachineConfig::baseline()).run(&p);
        let det = Machine::new(MachineConfig::with_detection(EpochMode::CleanCompact)).run(&p);
        assert_eq!(base.cycles, 200);
        assert_eq!(det.cycles, 1200);
    }

    #[test]
    fn barrier_aligns_cores() {
        let mut p = ProgramTrace::with_threads(2);
        p.threads[0].push(SimEvent::Compute(50));
        p.threads[0].push(SimEvent::Sync);
        p.threads[0].push(SimEvent::Compute(5));
        p.threads[1].push(SimEvent::Compute(500));
        p.threads[1].push(SimEvent::Sync);
        let r = Machine::new(MachineConfig::baseline()).run(&p);
        // Both resume at 500 + 20; core 0 adds 5 more.
        assert_eq!(r.per_core[0], 525);
        assert_eq!(r.per_core[1], 520);
    }

    #[test]
    fn repeated_same_thread_access_is_mostly_fast() {
        // Small working set, rewritten repeatedly by one thread at the
        // same clock: after the first pass all checks are fast.
        let mut p = ProgramTrace::with_threads(1);
        for _pass in 0..10 {
            for i in 0..64u64 {
                p.threads[0].push(SimEvent::Write {
                    addr: i * 4,
                    size: 4,
                    private: false,
                });
            }
        }
        let r = Machine::new(MachineConfig::with_detection(EpochMode::CleanCompact)).run(&p);
        let hw = r.hw.unwrap();
        assert!(hw.fast as f64 / hw.total() as f64 > 0.85, "{hw:?}");
    }

    #[test]
    fn fixed4b_slower_than_clean_on_large_working_set() {
        // A working set near LLC capacity, traversed twice: with CLEAN's
        // compact metadata (1:1) data+epochs strain the 16 MB L3; with
        // 4-byte-per-byte epochs (4:1) they overflow it and the reuse pass
        // misses to memory — the ocean/radix effect of Figure 11.
        let lines = 120_000u64; // ~7.3 MB of data
        let mut p = ProgramTrace::with_threads(1);
        for _pass in 0..2 {
            for i in 0..lines {
                p.threads[0].push(SimEvent::Write {
                    addr: i * 64,
                    size: 8,
                    private: false,
                });
            }
        }
        let clean = Machine::new(MachineConfig::with_detection(EpochMode::CleanCompact)).run(&p);
        let fixed4 = Machine::new(MachineConfig::with_detection(EpochMode::Fixed4B)).run(&p);
        assert!(
            fixed4.cycles > clean.cycles,
            "4B epochs without compaction must be slower: {} vs {}",
            fixed4.cycles,
            clean.cycles
        );
        assert!(
            fixed4.mem.llc_miss_rate() > clean.mem.llc_miss_rate(),
            "metadata pressure must raise the LLC miss rate"
        );
    }

    #[test]
    fn cross_thread_race_detected_in_sim() {
        let mut p = ProgramTrace::with_threads(2);
        p.threads[0].push(SimEvent::Write {
            addr: 0,
            size: 4,
            private: false,
        });
        p.threads[1].push(SimEvent::Write {
            addr: 0,
            size: 4,
            private: false,
        });
        let r = Machine::new(MachineConfig::with_detection(EpochMode::CleanCompact)).run(&p);
        assert_eq!(r.hw.unwrap().races, 1);
    }

    #[test]
    fn sync_transfers_hb_in_sim() {
        let mut p = ProgramTrace::with_threads(2);
        p.threads[0].push(SimEvent::Write {
            addr: 0,
            size: 4,
            private: false,
        });
        p.threads[0].push(SimEvent::Sync);
        p.threads[1].push(SimEvent::Sync);
        p.threads[1].push(SimEvent::Read {
            addr: 0,
            size: 4,
            private: false,
        });
        let r = Machine::new(MachineConfig::with_detection(EpochMode::CleanCompact)).run(&p);
        assert_eq!(r.hw.unwrap().races, 0);
    }
}
