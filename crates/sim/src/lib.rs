//! # clean-sim
//!
//! A from-scratch trace-driven multicore simulator reproducing the
//! hardware evaluation of *"CLEAN: A Race Detector with Cleaner
//! Semantics"* (ISCA 2015, Sections 5 and 6.3).
//!
//! The machine model follows Section 6.3.1 exactly: 8 simple in-order
//! cores (1 cycle per non-memory instruction), private 8-way 64 KB L1 and
//! 8-way 256 KB L2 caches, a shared 16-way 16 MB L3, 64-byte lines,
//! MESI-style invalidation, and latencies of 1 / 10 / 15 / 35 / 120
//! cycles for L1 / local-L2 / remote-L2 / L3 / memory.
//!
//! On top sits the CLEAN hardware race-check unit (Section 5): per-core
//! cached main vector-clock element, epoch loads through the regular
//! hierarchy, the Figure 4 sameThread/sameEpoch fast path, compact (one
//! epoch per 4 bytes) vs expanded (one epoch per byte) metadata lines
//! with on-demand expansion and address-miscalculation penalties
//! (Section 5.3), plus the fixed 1-byte and 4-byte epoch designs of
//! Figure 11.
//!
//! # Example
//!
//! ```
//! use clean_sim::{Machine, MachineConfig, EpochMode, ProgramTrace, SimEvent};
//!
//! let mut program = ProgramTrace::with_threads(2);
//! for t in 0..2 {
//!     for i in 0..100u64 {
//!         program.threads[t].push(SimEvent::Compute(3));
//!         program.threads[t].push(SimEvent::Write {
//!             addr: (t as u64) * 4096 + i * 8, size: 8, private: false,
//!         });
//!     }
//! }
//! let baseline = Machine::new(MachineConfig::baseline()).run(&program);
//! let detected = Machine::new(MachineConfig::with_detection(EpochMode::CleanCompact))
//!     .run(&program);
//! let slowdown = detected.cycles as f64 / baseline.cycles as f64;
//! assert!(slowdown >= 1.0);
//! assert_eq!(detected.hw.unwrap().races, 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cache;
mod hwclean;
mod machine;
mod mem;
mod trace;

pub use cache::{line_of, Cache, CacheConfig, LINE_SIZE};
pub use hwclean::{CheckClass, EpochMode, HwClean, HwStats, EXPANDED_BASE, META_BASE, VC_BASE};
pub use machine::{Machine, MachineConfig, MachineResult};
pub use mem::{HierarchyConfig, HitLevel, Latencies, MemStats, MemorySystem};
pub use trace::{ProgramTrace, SimEvent, ThreadTrace};
