//! The simulated memory system: per-core private L1/L2, shared L3, MESI
//!-style invalidation, with the paper's access latencies (Section 6.3.1):
//! L1 hit 1, local L2 hit 10, remote L2 hit 15, L3 hit 35, L3 miss 120
//! cycles.

use crate::cache::{line_of, Cache, CacheConfig, LINE_SIZE};

/// Access latencies in cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Latencies {
    /// L1 hit.
    pub l1: u32,
    /// Local (own) L2 hit.
    pub l2_local: u32,
    /// Remote (another core's private cache) hit.
    pub l2_remote: u32,
    /// Shared L3 hit.
    pub l3: u32,
    /// L3 miss (memory).
    pub memory: u32,
}

impl Latencies {
    /// The paper's latencies.
    pub const fn paper() -> Self {
        Latencies {
            l1: 1,
            l2_local: 10,
            l2_remote: 15,
            l3: 35,
            memory: 120,
        }
    }
}

impl Default for Latencies {
    fn default() -> Self {
        Self::paper()
    }
}

/// Where an access was satisfied (for statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HitLevel {
    /// Own L1.
    L1,
    /// Own L2.
    L2Local,
    /// Another core's private cache.
    L2Remote,
    /// Shared L3.
    L3,
    /// Memory.
    Memory,
}

/// Aggregate memory-system statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemStats {
    /// Line accesses satisfied per level.
    pub l1_hits: u64,
    /// Own-L2 hits.
    pub l2_local_hits: u64,
    /// Remote private-cache hits.
    pub l2_remote_hits: u64,
    /// L3 hits.
    pub l3_hits: u64,
    /// Memory accesses (LLC misses).
    pub memory_accesses: u64,
    /// Coherence invalidations performed.
    pub invalidations: u64,
}

impl MemStats {
    /// Total line accesses.
    pub fn total(&self) -> u64 {
        self.l1_hits
            + self.l2_local_hits
            + self.l2_remote_hits
            + self.l3_hits
            + self.memory_accesses
    }

    /// LLC (L3) miss rate over all line accesses.
    pub fn llc_miss_rate(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self.memory_accesses as f64 / t as f64
        }
    }
}

/// Geometry of the whole hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// Private L1 geometry.
    pub l1: CacheConfig,
    /// Private L2 geometry.
    pub l2: CacheConfig,
    /// Shared L3 geometry.
    pub l3: CacheConfig,
}

impl HierarchyConfig {
    /// The paper's hierarchy (Section 6.3.1).
    pub const fn paper() -> Self {
        HierarchyConfig {
            l1: CacheConfig::l1(),
            l2: CacheConfig::l2(),
            l3: CacheConfig::l3(),
        }
    }

    /// The paper's hierarchy with a different shared-LLC capacity (the
    /// cache-sensitivity ablation knob).
    pub fn with_l3_size(mut self, bytes: usize) -> Self {
        self.l3 = CacheConfig {
            size: bytes,
            assoc: self.l3.assoc,
        };
        self
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// The full memory hierarchy of the simulated multiprocessor.
#[derive(Debug, Clone)]
pub struct MemorySystem {
    l1: Vec<Cache>,
    l2: Vec<Cache>,
    l3: Cache,
    lat: Latencies,
    stats: MemStats,
}

impl MemorySystem {
    /// Builds the paper's hierarchy for `cores` cores.
    pub fn new(cores: usize, lat: Latencies) -> Self {
        Self::with_hierarchy(cores, lat, HierarchyConfig::paper())
    }

    /// Builds a hierarchy with explicit geometry.
    pub fn with_hierarchy(cores: usize, lat: Latencies, h: HierarchyConfig) -> Self {
        MemorySystem {
            l1: (0..cores).map(|_| Cache::new(h.l1)).collect(),
            l2: (0..cores).map(|_| Cache::new(h.l2)).collect(),
            l3: Cache::new(h.l3),
            lat,
            stats: MemStats::default(),
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> usize {
        self.l1.len()
    }

    /// Statistics so far.
    pub fn stats(&self) -> MemStats {
        self.stats
    }

    /// Performs one line access by `core`, returning (latency, level).
    /// Writes invalidate all other private copies (MESI upgrade).
    pub fn access_line(&mut self, core: usize, line: u64, write: bool) -> (u32, HitLevel) {
        let (lat, level) = if self.l1[core].access(line) {
            self.stats.l1_hits += 1;
            (self.lat.l1, HitLevel::L1)
        } else if self.l2[core].access(line) {
            self.l1[core].insert(line);
            self.stats.l2_local_hits += 1;
            (self.lat.l2_local, HitLevel::L2Local)
        } else if self.remote_has(core, line) {
            self.fill(core, line);
            self.stats.l2_remote_hits += 1;
            (self.lat.l2_remote, HitLevel::L2Remote)
        } else if self.l3.access(line) {
            self.fill_private(core, line);
            self.stats.l3_hits += 1;
            (self.lat.l3, HitLevel::L3)
        } else {
            self.fill(core, line);
            self.stats.memory_accesses += 1;
            (self.lat.memory, HitLevel::Memory)
        };
        if write {
            self.invalidate_others(core, line);
        }
        (lat, level)
    }

    /// Performs a data access of `size` bytes at `addr`, charging each
    /// touched line sequentially (accesses rarely span lines).
    pub fn access(&mut self, core: usize, addr: u64, size: u8, write: bool) -> u32 {
        let first = line_of(addr);
        let last = line_of(addr + u64::from(size.max(1)) - 1);
        let mut total = 0;
        let mut line = first;
        loop {
            total += self.access_line(core, line, write).0;
            if line == last {
                break;
            }
            line += LINE_SIZE;
        }
        total
    }

    fn remote_has(&self, core: usize, line: u64) -> bool {
        (0..self.cores())
            .any(|c| c != core && (self.l1[c].contains(line) || self.l2[c].contains(line)))
    }

    fn fill_private(&mut self, core: usize, line: u64) {
        self.l2[core].insert(line);
        self.l1[core].insert(line);
    }

    fn fill(&mut self, core: usize, line: u64) {
        self.l3.insert(line);
        self.fill_private(core, line);
    }

    fn invalidate_others(&mut self, core: usize, line: u64) {
        for c in 0..self.cores() {
            if c == core {
                continue;
            }
            if self.l1[c].invalidate(line) | self.l2[c].invalidate(line) {
                self.stats.invalidations += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_hits() {
        let mut m = MemorySystem::new(2, Latencies::paper());
        let (lat, lvl) = m.access_line(0, 0, false);
        assert_eq!((lat, lvl), (120, HitLevel::Memory));
        let (lat, lvl) = m.access_line(0, 0, false);
        assert_eq!((lat, lvl), (1, HitLevel::L1));
    }

    #[test]
    fn remote_hit_after_other_core_touch() {
        let mut m = MemorySystem::new(2, Latencies::paper());
        m.access_line(0, 64, false);
        let (lat, lvl) = m.access_line(1, 64, false);
        assert_eq!(lvl, HitLevel::L2Remote);
        assert_eq!(lat, 15);
    }

    #[test]
    fn write_invalidates_other_copies() {
        let mut m = MemorySystem::new(2, Latencies::paper());
        m.access_line(0, 0, false);
        m.access_line(1, 0, false); // both have it
        m.access_line(1, 0, true); // core 1 writes: invalidates core 0
        assert!(m.stats().invalidations >= 1);
        // Core 0's next access cannot be an L1 hit.
        let (_, lvl) = m.access_line(0, 0, false);
        assert_ne!(lvl, HitLevel::L1);
    }

    #[test]
    fn l3_hit_after_private_eviction() {
        let mut m = MemorySystem::new(1, Latencies::paper());
        // Touch enough distinct lines mapping everywhere to evict line 0
        // from L1+L2 (L2 is 256KB => 4096 lines), then re-access.
        m.access_line(0, 0, false);
        for i in 1..10_000u64 {
            m.access_line(0, i * LINE_SIZE, false);
        }
        let (lat, lvl) = m.access_line(0, 0, false);
        assert_eq!(lvl, HitLevel::L3);
        assert_eq!(lat, 35);
    }

    #[test]
    fn multi_line_access_charges_both() {
        let mut m = MemorySystem::new(1, Latencies::paper());
        let lat = m.access(0, 60, 8, false); // spans lines 0 and 64
        assert_eq!(lat, 240);
    }

    #[test]
    fn stats_accumulate() {
        let mut m = MemorySystem::new(1, Latencies::paper());
        m.access_line(0, 0, false);
        m.access_line(0, 0, false);
        let s = m.stats();
        assert_eq!(s.memory_accesses, 1);
        assert_eq!(s.l1_hits, 1);
        assert_eq!(s.total(), 2);
        assert!(s.llc_miss_rate() > 0.0);
    }
}
