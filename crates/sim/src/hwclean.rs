//! The CLEAN hardware race-check unit (Section 5).
//!
//! On each potentially shared access the unit, *in parallel with the data
//! access*: computes the epoch address (assuming the compact layout),
//! loads the epoch(s) through the regular memory hierarchy, runs the
//! Figure 4 check (sameThread/sameEpoch fast path, otherwise a vector
//! clock element load and comparison), updates epochs on writes, and
//! transitions lines from compact (one epoch per 4 data bytes) to
//! expanded (one epoch per byte) representation when a sub-group byte
//! gets a different epoch (Section 5.3).
//!
//! Only the latency in excess of the data access is exposed to the core
//! (Section 5.4).

use crate::cache::LINE_SIZE;
use crate::mem::MemorySystem;
use clean_core::{Epoch, EpochLayout, ThreadId, VectorClock};
use std::collections::{HashMap, HashSet};

/// Start of the metadata region in the simulated address space — far above
/// any program data, like the paper's dedicated epoch area (Figure 5).
pub const META_BASE: u64 = 1 << 40;

/// Start of the expanded-region epoch lines (Figure 5b).
pub const EXPANDED_BASE: u64 = 1 << 41;

/// Start of the in-memory thread vector clocks (Figure 5a).
pub const VC_BASE: u64 = 1 << 42;

/// Metadata organization under evaluation (Figure 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochMode {
    /// CLEAN: 32-bit epochs, compact lines (1 epoch / 4 bytes) expanded on
    /// demand to 1 epoch / byte (Section 5.3).
    CleanCompact,
    /// Hypothetical 1-byte epochs, 1 per data byte, no compaction — the
    /// upper bound of Figure 11.
    Fixed1B,
    /// 4-byte epochs, 1 per data byte, no compaction — the cache-pressure
    /// heavy design of Figure 11.
    Fixed4B,
}

/// How an access was resolved by the check unit (Figure 10's categories).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckClass {
    /// Stack access: no check needed.
    Private,
    /// Resolved by the Figure 4b fast path (sameThread, and for writes
    /// sameEpoch).
    Fast,
    /// Needed an in-memory vector-clock element load and comparison.
    VcLoad,
    /// Needed an epoch update (write by the same thread at a new clock).
    Update,
    /// Needed both the VC load and the update.
    VcLoadUpdate,
    /// Triggered a compact→expanded line transition.
    Expand,
}

/// Access-classification and latency statistics of the check unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HwStats {
    /// Private (stack) accesses.
    pub private: u64,
    /// Fast-path resolutions.
    pub fast: u64,
    /// VC-load resolutions.
    pub vc_load: u64,
    /// Update resolutions.
    pub update: u64,
    /// VC-load-and-update resolutions.
    pub vc_load_update: u64,
    /// Line expansions.
    pub expand: u64,
    /// Checked accesses whose line was compact.
    pub compact_accesses: u64,
    /// Checked accesses whose line was expanded.
    pub expanded_accesses: u64,
    /// Races detected (zero on the race-free evaluation traces).
    pub races: u64,
    /// Epoch-address miscalculation penalties paid (Section 5.3).
    pub miscalculations: u64,
    /// Total check cycles exposed to cores (stall beyond data latency).
    pub exposed_cycles: u64,
}

impl HwStats {
    /// All checked (non-private) accesses.
    pub fn checked(&self) -> u64 {
        self.fast + self.vc_load + self.update + self.vc_load_update + self.expand
    }

    /// All accesses including private.
    pub fn total(&self) -> u64 {
        self.private + self.checked()
    }

    /// Fraction of all accesses resolved by the fast path.
    pub fn fast_fraction(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        self.fast as f64 / self.total() as f64
    }

    /// Fraction resolved without any check work (private) or by the fast
    /// path — the paper's "quickly checked 90% of all memory accesses".
    pub fn quick_fraction(&self) -> f64 {
        if self.total() == 0 {
            return 0.0;
        }
        (self.private + self.fast) as f64 / self.total() as f64
    }
}

/// The hardware race-check unit state.
#[derive(Debug)]
pub struct HwClean {
    mode: EpochMode,
    layout: EpochLayout,
    /// Per-core (= per-thread) vector clocks, software-maintained.
    vcs: Vec<VectorClock>,
    /// Semantic epoch value per data byte (the *contents* of the epoch
    /// memory; its *placement* is what mode/compaction decide).
    epochs: HashMap<u64, Epoch>,
    /// Data lines currently in expanded state (CleanCompact mode).
    expanded: HashSet<u64>,
    stats: HwStats,
}

impl HwClean {
    /// Creates a check unit for `cores` single-threaded cores.
    pub fn new(cores: usize, mode: EpochMode) -> Self {
        let layout = EpochLayout::paper_default();
        let mut vcs = Vec::with_capacity(cores);
        for i in 0..cores {
            let mut vc = VectorClock::new(cores, layout);
            vc.increment(ThreadId::new(i as u16)).expect("clock 1 fits");
            vcs.push(vc);
        }
        HwClean {
            mode,
            layout,
            vcs,
            epochs: HashMap::new(),
            expanded: HashSet::new(),
            stats: HwStats::default(),
        }
    }

    /// The metadata organization in use.
    pub fn mode(&self) -> EpochMode {
        self.mode
    }

    /// Statistics so far.
    pub fn stats(&self) -> HwStats {
        self.stats
    }

    fn epoch_at(&self, addr: u64) -> Epoch {
        self.epochs.get(&addr).copied().unwrap_or(Epoch::ZERO)
    }

    /// Metadata lines that must be touched to *load* the epochs of
    /// `[addr, addr+size)`, under the line-state assumption the hardware
    /// makes (always compact first, Section 5.3).
    fn epoch_lines(&self, addr: u64, size: u8) -> Vec<u64> {
        let mut lines = Vec::with_capacity(2);
        match self.mode {
            EpochMode::Fixed1B => {
                let lo = META_BASE + addr;
                let hi = META_BASE + addr + u64::from(size) - 1;
                lines.push(lo / LINE_SIZE * LINE_SIZE);
                if hi / LINE_SIZE != lo / LINE_SIZE {
                    lines.push(hi / LINE_SIZE * LINE_SIZE);
                }
            }
            EpochMode::Fixed4B => {
                let lo = META_BASE + addr * 4;
                let hi = META_BASE + (addr + u64::from(size)) * 4 - 1;
                let mut l = lo / LINE_SIZE * LINE_SIZE;
                while l <= hi {
                    lines.push(l);
                    l += LINE_SIZE;
                }
            }
            EpochMode::CleanCompact => {
                // One compact line per data line: the hardware always
                // computes this address first.
                let first = addr / LINE_SIZE;
                let last = (addr + u64::from(size) - 1) / LINE_SIZE;
                for dl in first..=last {
                    lines.push(META_BASE + dl * LINE_SIZE);
                }
            }
        }
        lines
    }

    /// Handles a barrier episode: all participating cores' clocks join
    /// (every pre-barrier access happens-before every post-barrier one)
    /// and each enters a new SFR. The machine calls this once per global
    /// [`SimEvent::Sync`](crate::SimEvent::Sync) release; the 100-cycle
    /// software VC-maintenance latency is charged by the machine.
    pub fn on_barrier(&mut self) {
        let mut all = VectorClock::new(self.vcs.len(), self.layout);
        for vc in &self.vcs {
            all.join(vc);
        }
        for (i, vc) in self.vcs.iter_mut().enumerate() {
            vc.join(&all);
            vc.increment(ThreadId::new(i as u16))
                .expect("simulated clocks stay small");
        }
    }

    /// Runs the race check for a shared access, mutating the caches via
    /// `mem` for every metadata access, and returns the check latency
    /// (to be overlapped with `data_latency` by the caller).
    pub fn check(
        &mut self,
        mem: &mut MemorySystem,
        core: usize,
        addr: u64,
        size: u8,
        write: bool,
    ) -> u32 {
        debug_assert!(size >= 1);
        let tid = ThreadId::new(core as u16);
        let new_epoch = self.vcs[core].element(tid);
        let data_line = addr / LINE_SIZE;
        let is_expanded =
            self.mode == EpochMode::CleanCompact && self.expanded.contains(&data_line);

        // 1. Load the epoch line(s); the compact-assumption address first.
        let mut latency = 0u32;
        for l in self.epoch_lines(addr, size) {
            latency += mem.access_line(core, l, false).0;
        }

        // 2. Expanded-line address miscalculation penalty (CleanCompact):
        //    epochs for bytes beyond the first 16 live in extra lines.
        if is_expanded {
            self.stats.miscalculations += 1;
            let seg_first = (addr % LINE_SIZE) / 16;
            let seg_last = ((addr + u64::from(size) - 1) % LINE_SIZE) / 16;
            latency += 1; // reinterpret the loaded epoch
            for seg in seg_first..=seg_last {
                if seg == 0 {
                    continue; // reuses the compact-slot line already loaded
                }
                let l = EXPANDED_BASE + data_line * 3 * LINE_SIZE + (seg - 1) * LINE_SIZE;
                latency += mem.access_line(core, l, false).0;
            }
        }

        // 3. The Figure 4 check on the semantic epochs.
        let addrs: Vec<u64> = (addr..addr + u64::from(size)).collect();
        let same_thread = addrs
            .iter()
            .all(|a| self.layout.tid(self.epoch_at(*a)) == tid);
        let same_epoch = addrs.iter().all(|a| self.epoch_at(*a) == new_epoch);

        let mut class;
        if same_thread && (!write || same_epoch) {
            class = CheckClass::Fast;
        } else {
            let mut needs_vc = false;
            if !same_thread {
                needs_vc = true;
                // Load the needed VC element(s) of this thread from memory.
                let owners: HashSet<u16> = addrs
                    .iter()
                    .map(|a| self.layout.tid(self.epoch_at(*a)).raw())
                    .filter(|&t| t != tid.raw())
                    .collect();
                for owner in &owners {
                    let vaddr = VC_BASE + (core as u64) * 1024 + u64::from(*owner) * 4;
                    latency += mem
                        .access_line(core, vaddr / LINE_SIZE * LINE_SIZE, false)
                        .0;
                }
                // The comparison itself: race if the saved write does not
                // happen-before us.
                for a in &addrs {
                    let e = self.epoch_at(*a);
                    if self.vcs[core].races_with(e) {
                        self.stats.races += 1;
                        break;
                    }
                }
            }
            let needs_update = write && !same_epoch;
            class = match (needs_vc, needs_update) {
                (true, true) => CheckClass::VcLoadUpdate,
                (true, false) => CheckClass::VcLoad,
                (false, true) => CheckClass::Update,
                (false, false) => CheckClass::Fast,
            };

            if needs_update {
                // Does this write force a compact→expanded transition?
                if self.mode == EpochMode::CleanCompact && !is_expanded {
                    let group_first = addr / 4;
                    let group_last = (addr + u64::from(size) - 1) / 4;
                    let mut must_expand = false;
                    for g in group_first..=group_last {
                        let fully_covered = g * 4 >= addr && (g + 1) * 4 <= addr + u64::from(size);
                        if fully_covered {
                            continue;
                        }
                        // Partially covered group: uncovered bytes keep
                        // their old epoch; if that differs from the new
                        // one, the group can no longer share one epoch.
                        let differs = (g * 4..(g + 1) * 4)
                            .filter(|a| !(addr..addr + u64::from(size)).contains(a))
                            .any(|a| self.epoch_at(a) != new_epoch);
                        if differs {
                            must_expand = true;
                            break;
                        }
                    }
                    if must_expand {
                        class = CheckClass::Expand;
                        self.stats.expand += 1;
                        self.expanded.insert(data_line);
                        // Stretch: 1 cycle plus writing 4 full metadata
                        // lines (Section 6.3.1). Full-line writes allocate
                        // without fetching, so they cost store cycles, not
                        // miss latencies; the lines become cache-resident.
                        latency += 1 + 4;
                        mem.access_line(core, META_BASE + data_line * LINE_SIZE, true);
                        for seg in 1..4u64 {
                            let l =
                                EXPANDED_BASE + data_line * 3 * LINE_SIZE + (seg - 1) * LINE_SIZE;
                            mem.access_line(core, l, true);
                        }
                    }
                }
                if class != CheckClass::Expand {
                    // Plain epoch store into the already-resident line(s).
                    latency += 1;
                    for l in self.epoch_lines(addr, size) {
                        mem.access_line(core, l, true);
                    }
                }
                for a in &addrs {
                    self.epochs.insert(*a, new_epoch);
                }
            }
        }

        // 4. Bookkeeping.
        match class {
            CheckClass::Fast => self.stats.fast += 1,
            CheckClass::VcLoad => self.stats.vc_load += 1,
            CheckClass::Update => self.stats.update += 1,
            CheckClass::VcLoadUpdate => self.stats.vc_load_update += 1,
            CheckClass::Expand => self.stats.expand += 0, // counted above
            CheckClass::Private => unreachable!("private handled by caller"),
        }
        if self.mode == EpochMode::CleanCompact {
            if self.expanded.contains(&data_line) {
                self.stats.expanded_accesses += 1;
            } else {
                self.stats.compact_accesses += 1;
            }
        } else {
            // Fixed modes: 1B behaves like all-compact (1:1 metadata),
            // 4B like all-expanded (4:1).
            if self.mode == EpochMode::Fixed1B {
                self.stats.compact_accesses += 1;
            } else {
                self.stats.expanded_accesses += 1;
            }
        }
        latency
    }

    /// Records a private access (no check work).
    pub fn note_private(&mut self) {
        self.stats.private += 1;
    }

    /// Adds exposed stall cycles to the statistics.
    pub fn note_exposed(&mut self, cycles: u32) {
        self.stats.exposed_cycles += u64::from(cycles);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::Latencies;

    fn setup(mode: EpochMode) -> (HwClean, MemorySystem) {
        (
            HwClean::new(2, mode),
            MemorySystem::new(2, Latencies::paper()),
        )
    }

    #[test]
    fn first_write_is_update_then_fast() {
        let (mut hw, mut mem) = setup(EpochMode::CleanCompact);
        hw.check(&mut mem, 0, 0, 4, true);
        let s = hw.stats();
        assert_eq!(s.update, 1);
        // Same thread, same epoch: fast.
        hw.check(&mut mem, 0, 0, 4, true);
        hw.check(&mut mem, 0, 0, 4, false);
        assert_eq!(hw.stats().fast, 2);
    }

    #[test]
    fn cross_thread_read_takes_vc_load() {
        let (mut hw, mut mem) = setup(EpochMode::CleanCompact);
        hw.check(&mut mem, 0, 0, 4, true);
        hw.on_barrier(); // hb transfer: no race
        hw.check(&mut mem, 1, 0, 4, false);
        let s = hw.stats();
        assert_eq!(s.vc_load, 1);
        assert_eq!(s.races, 0);
    }

    #[test]
    fn unsynchronized_cross_thread_write_races() {
        let (mut hw, mut mem) = setup(EpochMode::CleanCompact);
        hw.check(&mut mem, 0, 0, 4, true);
        hw.check(&mut mem, 1, 0, 4, true);
        let s = hw.stats();
        assert_eq!(s.races, 1);
        assert_eq!(s.vc_load_update, 1);
    }

    #[test]
    fn aligned_word_writes_keep_lines_compact() {
        let (mut hw, mut mem) = setup(EpochMode::CleanCompact);
        for i in 0..16 {
            hw.check(&mut mem, 0, i * 4, 4, true);
        }
        assert_eq!(hw.stats().expand, 0);
        assert_eq!(hw.stats().expanded_accesses, 0);
    }

    #[test]
    fn byte_write_by_other_thread_expands() {
        let (mut hw, mut mem) = setup(EpochMode::CleanCompact);
        hw.check(&mut mem, 0, 0, 4, true); // t0 owns group 0
        hw.on_barrier();
        hw.check(&mut mem, 1, 1, 1, true); // t1 writes byte 1 only
        let s = hw.stats();
        assert_eq!(s.expand, 1);
        assert!(s.miscalculations == 0, "expansion is on the write itself");
        // Subsequent access to the line pays the miscalculation penalty.
        hw.check(&mut mem, 1, 0, 1, false);
        assert!(hw.stats().miscalculations >= 1);
        assert!(hw.stats().expanded_accesses >= 1);
    }

    #[test]
    fn byte_write_of_uniform_group_by_same_epoch_stays_compact() {
        let (mut hw, mut mem) = setup(EpochMode::CleanCompact);
        hw.check(&mut mem, 0, 0, 4, true);
        // Same thread, same epoch, sub-word write: covered bytes already
        // carry the epoch; fast path, no expansion.
        hw.check(&mut mem, 0, 2, 1, true);
        assert_eq!(hw.stats().expand, 0);
        assert_eq!(hw.stats().fast, 1);
    }

    #[test]
    fn fixed_modes_classify_compactness() {
        let (mut hw, mut mem) = setup(EpochMode::Fixed1B);
        hw.check(&mut mem, 0, 0, 4, true);
        assert_eq!(hw.stats().compact_accesses, 1);
        let (mut hw, mut mem) = setup(EpochMode::Fixed4B);
        hw.check(&mut mem, 0, 0, 4, true);
        assert_eq!(hw.stats().expanded_accesses, 1);
    }

    #[test]
    fn fixed4b_touches_more_metadata_lines() {
        let (mut hw4, mut mem4) = setup(EpochMode::Fixed4B);
        let (mut hw1, mut mem1) = setup(EpochMode::Fixed1B);
        // A 64-byte-spanning sweep: 4B epochs need 4 metadata lines per
        // data line, 1B epochs just one.
        for i in 0..8 {
            hw4.check(&mut mem4, 0, i * 8, 8, true);
            hw1.check(&mut mem1, 0, i * 8, 8, true);
        }
        // Same number of accesses, but a 4x larger metadata footprint:
        // more cold misses reach memory.
        assert!(
            mem4.stats().memory_accesses > mem1.stats().memory_accesses,
            "4B epochs must miss more: {:?} vs {:?}",
            mem4.stats(),
            mem1.stats()
        );
    }

    #[test]
    fn stats_fractions() {
        let (mut hw, mut mem) = setup(EpochMode::CleanCompact);
        hw.note_private();
        hw.check(&mut mem, 0, 0, 4, true);
        hw.check(&mut mem, 0, 0, 4, false);
        let s = hw.stats();
        assert_eq!(s.total(), 3);
        assert!(s.quick_fraction() > 0.6);
        assert!(s.fast_fraction() > 0.3);
    }
}
