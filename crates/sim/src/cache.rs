//! Set-associative LRU caches — the building block of the paper's
//! simulated memory hierarchy (Section 6.3.1: private 8-way 64 KB L1,
//! private 8-way 256 KB L2, shared 16-way 16 MB L3, all with 64 B lines).

/// Cache line size in bytes (64 B throughout the paper).
pub const LINE_SIZE: u64 = 64;

/// Returns the line-aligned address containing `addr`.
#[inline]
pub fn line_of(addr: u64) -> u64 {
    addr & !(LINE_SIZE - 1)
}

/// Geometry of one cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size: usize,
    /// Associativity (ways per set).
    pub assoc: usize,
}

impl CacheConfig {
    /// The paper's L1: 8-way, 64 KB.
    pub const fn l1() -> Self {
        CacheConfig {
            size: 64 * 1024,
            assoc: 8,
        }
    }

    /// The paper's L2: 8-way, 256 KB.
    pub const fn l2() -> Self {
        CacheConfig {
            size: 256 * 1024,
            assoc: 8,
        }
    }

    /// The paper's L3: 16-way, 16 MB.
    pub const fn l3() -> Self {
        CacheConfig {
            size: 16 * 1024 * 1024,
            assoc: 16,
        }
    }

    /// Number of sets.
    pub fn sets(&self) -> usize {
        self.size / (LINE_SIZE as usize) / self.assoc
    }
}

/// A set-associative cache with true-LRU replacement, tracking line
/// presence only (a latency model; data contents live elsewhere).
#[derive(Debug, Clone)]
pub struct Cache {
    assoc: usize,
    n_sets: usize,
    /// Per set: resident line addresses, most-recently-used last.
    sets: Vec<Vec<u64>>,
}

impl Cache {
    /// Builds an empty cache.
    ///
    /// # Panics
    ///
    /// Panics if the geometry yields no sets.
    pub fn new(config: CacheConfig) -> Self {
        let n_sets = config.sets();
        assert!(n_sets > 0, "cache too small for its associativity");
        Cache {
            assoc: config.assoc,
            n_sets,
            sets: vec![Vec::new(); n_sets],
        }
    }

    #[inline]
    fn set_of(&self, line: u64) -> usize {
        ((line / LINE_SIZE) % self.n_sets as u64) as usize
    }

    /// Looks up `line`; on hit, refreshes LRU and returns true.
    pub fn access(&mut self, line: u64) -> bool {
        let s = self.set_of(line);
        let set = &mut self.sets[s];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            let l = set.remove(pos);
            set.push(l);
            true
        } else {
            false
        }
    }

    /// Returns true if `line` is resident (no LRU update).
    pub fn contains(&self, line: u64) -> bool {
        self.sets[self.set_of(line)].contains(&line)
    }

    /// Inserts `line` (MRU), evicting the LRU line if the set is full.
    /// Returns the evicted line, if any.
    pub fn insert(&mut self, line: u64) -> Option<u64> {
        let s = self.set_of(line);
        let set = &mut self.sets[s];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            let l = set.remove(pos);
            set.push(l);
            return None;
        }
        let evicted = if set.len() == self.assoc {
            Some(set.remove(0))
        } else {
            None
        };
        set.push(line);
        evicted
    }

    /// Removes `line` if resident (coherence invalidation).
    pub fn invalidate(&mut self, line: u64) -> bool {
        let s = self.set_of(line);
        let set = &mut self.sets[s];
        if let Some(pos) = set.iter().position(|&l| l == line) {
            set.remove(pos);
            true
        } else {
            false
        }
    }

    /// Number of resident lines.
    pub fn resident(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways.
        Cache::new(CacheConfig {
            size: 4 * LINE_SIZE as usize,
            assoc: 2,
        })
    }

    #[test]
    fn paper_geometries() {
        assert_eq!(CacheConfig::l1().sets(), 128);
        assert_eq!(CacheConfig::l2().sets(), 512);
        assert_eq!(CacheConfig::l3().sets(), 16384);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0));
        c.insert(0);
        assert!(c.access(0));
        assert!(c.contains(0));
    }

    #[test]
    fn lru_eviction() {
        let mut c = tiny();
        // Lines 0, 128, 256 map to set 0 (2 sets => stride 128).
        c.insert(0);
        c.insert(128);
        c.access(0); // 0 becomes MRU; 128 is LRU
        let evicted = c.insert(256);
        assert_eq!(evicted, Some(128));
        assert!(c.contains(0));
        assert!(c.contains(256));
    }

    #[test]
    fn reinsert_refreshes_no_eviction() {
        let mut c = tiny();
        c.insert(0);
        c.insert(128);
        assert_eq!(c.insert(0), None, "already resident");
        assert_eq!(c.resident(), 2);
    }

    #[test]
    fn invalidate_removes() {
        let mut c = tiny();
        c.insert(64);
        assert!(c.invalidate(64));
        assert!(!c.contains(64));
        assert!(!c.invalidate(64));
    }

    #[test]
    fn line_of_masks() {
        assert_eq!(line_of(0), 0);
        assert_eq!(line_of(63), 0);
        assert_eq!(line_of(64), 64);
        assert_eq!(line_of(130), 128);
    }
}
