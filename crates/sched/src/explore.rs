//! Schedule exploration drivers: bounded-exhaustive DFS (with a
//! persistable frontier, resumable across invocations) and PCT-style
//! randomized runs, both checking each explored schedule against the
//! program's declared [`Expect`]ation and the differential detector
//! semantics.

use crate::differential;
use crate::picker::{DfsPicker, PctPicker};
use crate::programs::{Expect, ProgramSpec};
use crate::token::Schedule;
use crate::vm::{run_schedule, Execution};
use std::time::{Duration, Instant};

/// The DFS frontier: enumerates every schedule of a program by forcing
/// lexicographically increasing choice-index prefixes.
///
/// The explorer is *stateless re-execution* model checking: a schedule is
/// identified by the prefix of choices that produced it, so the whole
/// frontier is one small integer vector — cheap to persist and resume.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DfsExplorer {
    /// Prefix to force on the next run; `None` when exhausted.
    next_prefix: Option<Vec<usize>>,
    /// Schedules explored so far (carried across resume).
    pub explored: usize,
}

impl Default for DfsExplorer {
    fn default() -> Self {
        Self::new()
    }
}

/// Version prefix of the persisted DFS state format.
const STATE_VERSION: &str = "dfs:v1";

impl DfsExplorer {
    /// A fresh exploration starting at the default schedule.
    pub fn new() -> Self {
        DfsExplorer {
            next_prefix: Some(Vec::new()),
            explored: 0,
        }
    }

    /// True when every schedule has been enumerated.
    pub fn exhausted(&self) -> bool {
        self.next_prefix.is_none()
    }

    /// The prefix to force on the next execution.
    pub fn next_prefix(&self) -> Option<&[usize]> {
        self.next_prefix.as_deref()
    }

    /// Advances the frontier past an execution's recorded choice log:
    /// the next schedule bumps the deepest choice that still has an
    /// unexplored sibling.
    pub fn record(&mut self, choice_log: &[(usize, usize)]) {
        self.explored += 1;
        let mut next = None;
        for (i, &(chosen, n)) in choice_log.iter().enumerate().rev() {
            if chosen + 1 < n {
                let mut p: Vec<usize> = choice_log[..i].iter().map(|&(c, _)| c).collect();
                p.push(chosen + 1);
                next = Some(p);
                break;
            }
        }
        self.next_prefix = next;
    }

    /// Serializes the frontier (`dfs:v1:<explored>:<prefix dots>` or
    /// `dfs:v1:<explored>:done`).
    pub fn state(&self) -> String {
        match &self.next_prefix {
            None => format!("{STATE_VERSION}:{}:done", self.explored),
            Some(p) => {
                let dots: Vec<String> = p.iter().map(|c| c.to_string()).collect();
                format!("{STATE_VERSION}:{}:{}", self.explored, dots.join("."))
            }
        }
    }

    /// Restores a frontier serialized by [`state`](Self::state).
    ///
    /// # Errors
    ///
    /// Returns a description of the malformed field.
    pub fn from_state(s: &str) -> Result<Self, String> {
        let rest = s
            .trim()
            .strip_prefix(STATE_VERSION)
            .and_then(|r| r.strip_prefix(':'))
            .ok_or_else(|| format!("missing `{STATE_VERSION}:` prefix in {s:?}"))?;
        let (count, prefix) = rest
            .split_once(':')
            .ok_or_else(|| format!("missing prefix field in {s:?}"))?;
        let explored: usize = count
            .parse()
            .map_err(|_| format!("bad explored count {count:?}"))?;
        let next_prefix = if prefix == "done" {
            None
        } else if prefix.is_empty() {
            Some(Vec::new())
        } else {
            let mut p = Vec::new();
            for part in prefix.split('.') {
                p.push(
                    part.parse::<usize>()
                        .map_err(|_| format!("bad choice index {part:?}"))?,
                );
            }
            Some(p)
        };
        Ok(DfsExplorer {
            next_prefix,
            explored,
        })
    }
}

/// Budget and options for an exploration run.
#[derive(Debug, Clone)]
pub struct ExploreOpts {
    /// Maximum schedules to run this invocation.
    pub max_schedules: usize,
    /// Wall-clock budget; exploration stops (resumably) when exceeded.
    pub time_budget: Option<Duration>,
}

impl Default for ExploreOpts {
    fn default() -> Self {
        ExploreOpts {
            max_schedules: 10_000,
            time_budget: None,
        }
    }
}

/// One schedule that violated the program's expectation or the detector
/// semantics.
#[derive(Debug)]
pub struct Failure {
    /// The offending schedule.
    pub schedule: Schedule,
    /// Why it failed.
    pub reasons: Vec<String>,
    /// The execution, for artifact capture.
    pub exec: Execution,
}

/// Aggregate result of an exploration run.
#[derive(Debug, Default)]
pub struct ExploreReport {
    /// Schedules executed in this invocation.
    pub schedules: usize,
    /// DFS only: the frontier was exhausted (state-space complete).
    pub complete: bool,
    /// Schedules on which online CLEAN flagged a race.
    pub clean_race_schedules: usize,
    /// Schedules that deadlocked.
    pub deadlocks: usize,
    /// Schedules hitting the depth bound.
    pub depth_limited: usize,
    /// Schedules where the reference detector found WAR races CLEAN
    /// (correctly) missed.
    pub war_miss_schedules: usize,
    /// Distinct addresses of CLEAN-missed WAR races, aggregated.
    pub war_miss_addrs: Vec<usize>,
    /// Expectation / differential failures (first few, with executions).
    pub failures: Vec<Failure>,
}

impl ExploreReport {
    /// True when every explored schedule met its expectation.
    pub fn ok(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Checks one execution against the program's expectation and the
/// differential semantics; returns the reasons it fails, if any.
pub fn check_execution(
    spec: &ProgramSpec,
    exec: &Execution,
) -> (Vec<String>, differential::DiffReport) {
    let diff = differential::check(exec, spec.cfg.max_threads);
    let mut reasons = diff.violations.clone();
    if !exec.panicked.is_empty() {
        reasons.push(format!("threads panicked: {:?}", exec.panicked));
    }
    if exec.depth_limited {
        reasons.push("execution hit the step bound".into());
    }
    match spec.expect {
        Expect::RaceFree => {
            if let Some((i, r)) = exec.clean_races.first() {
                reasons.push(format!(
                    "race-free program raced: {} @{:#x} at event {i}",
                    r.kind, r.addr
                ));
            }
            if exec.deadlock {
                reasons.push("race-free program deadlocked".into());
            }
        }
        Expect::CleanRaceAlways => {
            if exec.clean_races.is_empty() {
                reasons.push("CLEAN found no race on a schedule of an always-racy program".into());
            }
            if exec.deadlock {
                reasons.push("always-racy program deadlocked".into());
            }
        }
        Expect::Racy => {
            let vcfull = diff.engines.iter().find(|e| e.name == "vcfull");
            if vcfull.is_none_or(|e| e.races.is_empty()) {
                reasons.push("reference detector found no race on a racy program".into());
            }
            if exec.deadlock {
                reasons.push("racy program deadlocked".into());
            }
        }
        Expect::MayDeadlock => {}
    }
    (reasons, diff)
}

fn tally(report: &mut ExploreReport, spec: &ProgramSpec, schedule: Schedule, exec: Execution) {
    let (reasons, diff) = check_execution(spec, &exec);
    report.schedules += 1;
    if !exec.clean_races.is_empty() {
        report.clean_race_schedules += 1;
    }
    if exec.deadlock {
        report.deadlocks += 1;
    }
    if exec.depth_limited {
        report.depth_limited += 1;
    }
    if !diff.war_misses.is_empty() {
        report.war_miss_schedules += 1;
        for &(_, r) in &diff.war_misses {
            if !report.war_miss_addrs.contains(&r.addr) {
                report.war_miss_addrs.push(r.addr);
            }
        }
    }
    if !reasons.is_empty() && report.failures.len() < 8 {
        report.failures.push(Failure {
            schedule,
            reasons,
            exec,
        });
    }
}

/// Runs bounded-exhaustive DFS from the explorer's current frontier,
/// advancing it in place (persist [`DfsExplorer::state`] to resume).
pub fn explore_dfs(
    spec: &ProgramSpec,
    explorer: &mut DfsExplorer,
    opts: &ExploreOpts,
) -> ExploreReport {
    let start = Instant::now();
    let mut report = ExploreReport::default();
    while let Some(prefix) = explorer.next_prefix().map(<[usize]>::to_vec) {
        if report.schedules >= opts.max_schedules {
            return report;
        }
        if let Some(budget) = opts.time_budget {
            if start.elapsed() >= budget {
                return report;
            }
        }
        let mut picker = DfsPicker::new(prefix);
        let exec = run_schedule(&spec.factory, &spec.cfg, &mut picker, None);
        explorer.record(&exec.choice_log);
        let schedule = exec.schedule.clone();
        tally(&mut report, spec, schedule, exec);
    }
    report.complete = true;
    report
}

/// Runs `count` PCT executions with seeds `base_seed..base_seed + count`.
pub fn explore_pct(
    spec: &ProgramSpec,
    base_seed: u64,
    count: usize,
    depth: usize,
    opts: &ExploreOpts,
) -> ExploreReport {
    let start = Instant::now();
    let mut report = ExploreReport::default();
    for i in 0..count.min(opts.max_schedules) {
        if let Some(budget) = opts.time_budget {
            if start.elapsed() >= budget {
                return report;
            }
        }
        let mut picker = PctPicker::new(base_seed + i as u64, depth, spec.cfg.max_steps.min(256));
        let exec = run_schedule(&spec.factory, &spec.cfg, &mut picker, None);
        let schedule = exec.schedule.clone();
        tally(&mut report, spec, schedule, exec);
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dfs_state_roundtrip() {
        let mut e = DfsExplorer::new();
        assert_eq!(DfsExplorer::from_state(&e.state()).unwrap(), e);
        e.record(&[(0, 3), (1, 2), (0, 1)]);
        // Deepest choice with an unexplored sibling is position 0 (the
        // (1,2) at position 1 is already the last sibling), so the next
        // prefix bumps it to [1].
        assert_eq!(e.next_prefix(), Some(&[1][..]));
        let s = e.state();
        assert_eq!(DfsExplorer::from_state(&s).unwrap(), e);
        e.record(&[(1, 3), (0, 1)]);
        assert_eq!(e.next_prefix(), Some(&[2][..]));
        e.record(&[(2, 3)]);
        assert!(e.exhausted());
        assert_eq!(DfsExplorer::from_state(&e.state()).unwrap(), e);
    }

    #[test]
    fn dfs_state_rejects_garbage() {
        assert!(DfsExplorer::from_state("").is_err());
        assert!(DfsExplorer::from_state("dfs:v1:x:done").is_err());
        assert!(DfsExplorer::from_state("dfs:v2:0:").is_err());
        assert!(DfsExplorer::from_state("dfs:v1:3:0.a").is_err());
    }

    #[test]
    fn dfs_frontier_enumerates_binary_tree() {
        // A synthetic 2-level binary choice tree: 4 leaves.
        let mut e = DfsExplorer::new();
        let mut leaves = Vec::new();
        while let Some(p) = e.next_prefix().map(<[usize]>::to_vec) {
            // "Execute": choices default to 0 beyond the prefix.
            let mut log = Vec::new();
            for lvl in 0..2 {
                log.push((p.get(lvl).copied().unwrap_or(0), 2));
            }
            leaves.push(log.iter().map(|&(c, _)| c).collect::<Vec<_>>());
            e.record(&log);
        }
        assert_eq!(leaves, vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]);
        assert_eq!(e.explored, 4);
    }
}
