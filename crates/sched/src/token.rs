//! The schedule token: a portable, replayable serialization of one
//! explored interleaving.
//!
//! A token is the sequence of virtual-thread ids granted at each yield
//! point, rendered as `v1:0.1.0.2`. Replaying a token against the same
//! program deterministically reproduces the interleaving (the VM has no
//! other source of nondeterminism); a token shorter than the execution
//! forces a prefix and lets the deterministic default policy (lowest
//! enabled thread id) finish the run, which is what makes shrunk repro
//! tokens small.

use core::fmt;
use std::str::FromStr;

/// Version prefix of the textual token format.
pub const TOKEN_VERSION: &str = "v1";

/// A schedule: the thread id chosen at each scheduling step.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Schedule(pub Vec<usize>);

impl Schedule {
    /// The empty schedule (pure default policy).
    pub fn empty() -> Self {
        Schedule(Vec::new())
    }

    /// Number of forced yield points.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True if no yield point is forced.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{TOKEN_VERSION}:")?;
        for (i, t) in self.0.iter().enumerate() {
            if i > 0 {
                f.write_str(".")?;
            }
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

/// Error parsing a schedule token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenParseError(pub String);

impl fmt::Display for TokenParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bad schedule token: {}", self.0)
    }
}

impl std::error::Error for TokenParseError {}

impl FromStr for Schedule {
    type Err = TokenParseError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let body = s
            .strip_prefix(TOKEN_VERSION)
            .and_then(|r| r.strip_prefix(':'))
            .ok_or_else(|| {
                TokenParseError(format!("missing `{TOKEN_VERSION}:` prefix in {s:?}"))
            })?;
        if body.is_empty() {
            return Ok(Schedule::empty());
        }
        let mut out = Vec::new();
        for part in body.split('.') {
            out.push(
                part.parse::<usize>()
                    .map_err(|_| TokenParseError(format!("bad thread id {part:?} in {s:?}")))?,
            );
        }
        Ok(Schedule(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for sched in [
            Schedule::empty(),
            Schedule(vec![0]),
            Schedule(vec![0, 1, 0, 2, 17]),
        ] {
            let s = sched.to_string();
            assert_eq!(s.parse::<Schedule>().unwrap(), sched, "{s}");
        }
    }

    #[test]
    fn display_format() {
        assert_eq!(Schedule(vec![0, 1, 2]).to_string(), "v1:0.1.2");
        assert_eq!(Schedule::empty().to_string(), "v1:");
    }

    #[test]
    fn rejects_garbage() {
        assert!("".parse::<Schedule>().is_err());
        assert!("0.1.2".parse::<Schedule>().is_err());
        assert!("v1:0..2".parse::<Schedule>().is_err());
        assert!("v2:0".parse::<Schedule>().is_err());
        assert!("v1:a".parse::<Schedule>().is_err());
    }
}
