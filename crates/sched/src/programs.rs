//! The built-in program corpus: small concurrent kernels written against
//! the VM's virtualized thread API, with a declared expectation the
//! explorer checks on every schedule.
//!
//! `racy_probe` mirrors `clean_workloads::kernels::racy_probe` — the
//! seeded two-cell kernel of the acceptance criteria: cell 0 carries a
//! guaranteed WAW/RAW race in *every* schedule (both workers write it
//! unsynchronized), cell 1 carries an unordered read/write pair whose
//! WAR-direction schedules CLEAN deliberately misses while the full
//! baselines flag them.

use crate::vm::{ProgramFn, VmConfig};
use std::sync::Arc;

/// What the explorer should check about a program's executions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Expect {
    /// No detector may report any race on any schedule; executions must
    /// be schedule-independent (same digest everywhere).
    RaceFree,
    /// CLEAN must flag a WAW or RAW race on the first racy access in
    /// *every* schedule.
    CleanRaceAlways,
    /// The full detectors flag a race in every schedule; CLEAN may miss
    /// the schedules where the race manifests as WAR only.
    Racy,
    /// Some schedules deadlock (the scheduler must detect, not hang).
    MayDeadlock,
}

/// A named program of the corpus.
#[derive(Clone)]
pub struct ProgramSpec {
    /// Registry name (CLI `--program`).
    pub name: &'static str,
    /// One-line description.
    pub about: &'static str,
    /// The expectation checked by exploration.
    pub expect: Expect,
    /// VM configuration the program needs.
    pub cfg: VmConfig,
    /// Factory producing a fresh root body per execution.
    pub factory: ProgramFn,
}

impl std::fmt::Debug for ProgramSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgramSpec")
            .field("name", &self.name)
            .field("expect", &self.expect)
            .finish()
    }
}

fn cfg(max_threads: usize) -> VmConfig {
    VmConfig {
        max_threads,
        heap_cells: 8,
        max_steps: 512,
        stop_on_race: false,
        ..VmConfig::default()
    }
}

/// The seeded two-cell racy kernel (acceptance criteria): every worker
/// does `read(0); write(0, id)` — an inter-worker WAW/RAW in every
/// schedule — then `read(1)`, with worker 1 alone writing cell 1, so
/// cell 1 races are WAR in the read-first schedules (CLEAN-missed) and
/// RAW in the write-first ones.
fn racy_probe() -> ProgramFn {
    Arc::new(|| {
        Box::new(|c| {
            let mut workers = Vec::new();
            for w in 0..2u64 {
                workers.push(c.spawn(move |c| {
                    c.read(0)?;
                    c.write(0, 100 + w)?;
                    c.read(1)?;
                    if w == 1 {
                        c.write(1, 7)?;
                    }
                    Ok(w)
                })?);
            }
            let mut sum = 0;
            for t in workers {
                sum += c.join(t)?;
            }
            Ok(sum)
        })
    })
}

/// Two workers write the same cell with no synchronization: a WAW (or
/// RAW via the preceding read) in every schedule.
fn waw_pair() -> ProgramFn {
    Arc::new(|| {
        Box::new(|c| {
            let a = c.spawn(|c| {
                c.write(0, 1)?;
                Ok(0)
            })?;
            let b = c.spawn(|c| {
                c.write(0, 2)?;
                Ok(0)
            })?;
            c.join(a)?;
            c.join(b)?;
            c.read(0)
        })
    })
}

/// One reader, one writer, no synchronization: WAR in read-first
/// schedules (CLEAN misses), RAW in write-first ones (CLEAN flags).
fn war_probe() -> ProgramFn {
    Arc::new(|| {
        Box::new(|c| {
            let r = c.spawn(|c| c.read(0))?;
            let w = c.spawn(|c| {
                c.write(0, 9)?;
                Ok(9)
            })?;
            c.join(r)?;
            c.join(w)?;
            Ok(0)
        })
    })
}

/// A mutex-protected counter incremented by two workers: race-free and
/// deterministic (final value 2) in every schedule.
fn lock_counter() -> ProgramFn {
    Arc::new(|| {
        Box::new(|c| {
            let m = c.create_mutex();
            let mut workers = Vec::new();
            for _ in 0..2 {
                workers.push(c.spawn(move |c| {
                    c.lock(m)?;
                    let v = c.read(0)?;
                    c.write(0, v + 1)?;
                    c.unlock(m)?;
                    Ok(v)
                })?);
            }
            for t in workers {
                c.join(t)?;
            }
            c.read(0)
        })
    })
}

/// Two workers write their own cell, meet at a barrier, then read each
/// other's cell: race-free across the barrier's release edge.
fn barrier_phase() -> ProgramFn {
    Arc::new(|| {
        Box::new(|c| {
            let b = c.create_barrier(2);
            let mut workers = Vec::new();
            for w in 0..2usize {
                workers.push(c.spawn(move |c| {
                    c.write(w, w as u64 + 10)?;
                    c.barrier_wait(b)?;
                    c.read(1 - w)
                })?);
            }
            let mut sum = 0;
            for t in workers {
                sum += c.join(t)?;
            }
            Ok(sum)
        })
    })
}

/// A writer updates a cell under the write lock; two readers read it
/// under read locks: race-free through the rwlock's clocks.
fn rw_shared() -> ProgramFn {
    Arc::new(|| {
        Box::new(|c| {
            let l = c.create_rwlock();
            let wr = c.spawn(move |c| {
                c.write_lock(l)?;
                c.write(0, 5)?;
                c.write_unlock(l)?;
                Ok(0)
            })?;
            let mut readers = Vec::new();
            for _ in 0..2 {
                readers.push(c.spawn(move |c| {
                    c.read_lock(l)?;
                    let v = c.read(0)?;
                    c.read_unlock(l)?;
                    Ok(v)
                })?);
            }
            c.join(wr)?;
            for t in readers {
                c.join(t)?;
            }
            Ok(0)
        })
    })
}

/// Producer/consumer hand-off through a condvar: the producer fills a
/// data cell before raising a mutex-protected flag; the consumer waits
/// (predicate loop) and reads the data afterwards. Race-free in every
/// schedule, including signal-before-wait ones.
fn cv_handoff() -> ProgramFn {
    Arc::new(|| {
        Box::new(|c| {
            let m = c.create_mutex();
            let cv = c.create_condvar();
            let prod = c.spawn(move |c| {
                c.write(1, 42)?;
                c.lock(m)?;
                c.write(0, 1)?;
                c.cond_signal(cv)?;
                c.unlock(m)?;
                Ok(0)
            })?;
            let cons = c.spawn(move |c| {
                c.lock(m)?;
                while c.read(0)? == 0 {
                    c.cond_wait(cv, m)?;
                }
                c.unlock(m)?;
                c.read(1)
            })?;
            c.join(prod)?;
            c.join(cons)
        })
    })
}

/// A writer initializes a cell under the write lock, spawns a reader
/// while still holding it, publishes by *downgrading* to a shared hold,
/// and keeps reading under that hold. The downgrade's release edge is
/// the only thing ordering the initialization before the reader's load
/// — race-free in every schedule iff that edge exists. (One reader
/// keeps the space exhaustible; multi-reader sharing is `rw_shared`.)
fn rw_downgrade() -> ProgramFn {
    Arc::new(|| {
        Box::new(|c| {
            let l = c.create_rwlock();
            c.write_lock(l)?;
            let r = c.spawn(move |c| {
                c.read_lock(l)?;
                let v = c.read(0)?;
                c.read_unlock(l)?;
                Ok(v)
            })?;
            // Written while exclusive but *after* the fork, so the fork
            // edge cannot order it — only the downgrade can.
            c.write(0, 77)?;
            c.downgrade(l)?;
            let v = c.read(0)?;
            c.read_unlock(l)?;
            Ok(v + c.join(r)?)
        })
    })
}

/// Downgrade grants a *shared* hold, not a private one: cell 0 written
/// while exclusive is published to the reader by the downgrade edge, but
/// the write to cell 1 afterwards — under the shared hold, concurrent
/// with the reader's shared hold — races (WAR in read-first schedules,
/// which CLEAN misses; RAW in write-first ones, which it flags).
fn rw_downgrade_racy() -> ProgramFn {
    Arc::new(|| {
        Box::new(|c| {
            let l = c.create_rwlock();
            c.write_lock(l)?;
            c.write(0, 1)?;
            let r = c.spawn(move |c| {
                c.read_lock(l)?;
                c.read(0)?;
                let v = c.read(1)?;
                c.read_unlock(l)?;
                Ok(v)
            })?;
            c.downgrade(l)?;
            c.write(1, 2)?;
            c.read_unlock(l)?;
            c.join(r)?;
            Ok(0)
        })
    })
}

/// The classic AB/BA lock-order inversion: schedules where each worker
/// holds one lock deadlock; the scheduler must detect this, not hang.
fn ab_deadlock() -> ProgramFn {
    Arc::new(|| {
        Box::new(|c| {
            let a = c.create_mutex();
            let b = c.create_mutex();
            let w0 = c.spawn(move |c| {
                c.lock(a)?;
                c.lock(b)?;
                c.unlock(b)?;
                c.unlock(a)?;
                Ok(0)
            })?;
            let w1 = c.spawn(move |c| {
                c.lock(b)?;
                c.lock(a)?;
                c.unlock(a)?;
                c.unlock(b)?;
                Ok(0)
            })?;
            c.join(w0)?;
            c.join(w1)?;
            Ok(0)
        })
    })
}

/// The full program corpus.
pub fn registry() -> Vec<ProgramSpec> {
    vec![
        ProgramSpec {
            name: "racy_probe",
            about: "two-cell seeded kernel: WAW/RAW on cell 0 every schedule, WAR-direction misses on cell 1",
            expect: Expect::CleanRaceAlways,
            cfg: cfg(3),
            factory: racy_probe(),
        },
        ProgramSpec {
            name: "waw_pair",
            about: "two unsynchronized writers to one cell",
            expect: Expect::CleanRaceAlways,
            cfg: cfg(3),
            factory: waw_pair(),
        },
        ProgramSpec {
            name: "war_probe",
            about: "unordered read/write pair: WAR or RAW depending on schedule",
            expect: Expect::Racy,
            cfg: cfg(3),
            factory: war_probe(),
        },
        ProgramSpec {
            name: "lock_counter",
            about: "mutex-protected counter, two workers",
            expect: Expect::RaceFree,
            cfg: cfg(3),
            factory: lock_counter(),
        },
        ProgramSpec {
            name: "barrier_phase",
            about: "write-own / barrier / read-other's, two workers",
            expect: Expect::RaceFree,
            cfg: cfg(3),
            factory: barrier_phase(),
        },
        ProgramSpec {
            name: "rw_shared",
            about: "one writer, two readers through a rwlock",
            expect: Expect::RaceFree,
            cfg: cfg(4),
            factory: rw_shared(),
        },
        ProgramSpec {
            name: "rw_downgrade",
            about: "write-locked init published to a reader by a downgrade, shared re-read after",
            expect: Expect::RaceFree,
            cfg: cfg(2),
            factory: rw_downgrade(),
        },
        ProgramSpec {
            name: "rw_downgrade_racy",
            about: "downgrade leaves only a shared hold: post-downgrade write races with a reader",
            expect: Expect::Racy,
            cfg: cfg(2),
            factory: rw_downgrade_racy(),
        },
        ProgramSpec {
            name: "cv_handoff",
            about: "condvar producer/consumer hand-off with predicate loop",
            expect: Expect::RaceFree,
            cfg: cfg(3),
            factory: cv_handoff(),
        },
        ProgramSpec {
            name: "ab_deadlock",
            about: "AB/BA lock-order inversion (deadlocks on some schedules)",
            expect: Expect::MayDeadlock,
            cfg: cfg(3),
            factory: ab_deadlock(),
        },
    ]
}

/// Looks up a program by name.
pub fn find(name: &str) -> Option<ProgramSpec> {
    registry().into_iter().find(|p| p.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_unique() {
        let names: Vec<_> = registry().iter().map(|p| p.name).collect();
        let mut dedup = names.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(names.len(), dedup.len());
    }

    #[test]
    fn find_known_and_unknown() {
        assert!(find("racy_probe").is_some());
        assert!(find("nope").is_none());
    }
}
