//! Schedule shrinking: reduces a failing schedule to a minimal forced
//! prefix that still reproduces the failure.
//!
//! Three phases, all validated by lenient replay (unusable token entries
//! are skipped, so any subsequence of a schedule is itself a schedule):
//!
//! 1. **Prefix truncation** — binary search for the shortest token prefix
//!    after which the deterministic default policy still reproduces the
//!    failure. Races need only the few reorderings that break the
//!    happens-before edge, so this alone usually collapses a schedule to
//!    a handful of yield points.
//! 2. **Thread deletion** — for each thread still chosen by the token,
//!    try deleting *all* of its choices at once. Bystander threads whose
//!    scheduling never matters to the failure (a common pattern: the race
//!    is between two workers while others churn on unrelated state)
//!    disappear in one trial each instead of one trial per entry.
//! 3. **Chunk deletion (ddmin-lite)** — repeatedly delete halving-size
//!    chunks anywhere in the remaining token while the failure persists,
//!    until no single entry can be removed.
//!
//! Every candidate is re-executed, so the result is always a genuinely
//! reproducing schedule, not a guess.

use crate::picker::ReplayPicker;
use crate::programs::ProgramSpec;
use crate::token::Schedule;
use crate::vm::{run_schedule, Execution};
use clean_core::RaceKind;

/// The failure a shrunk schedule must keep reproducing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Repro {
    /// The same first CLEAN race: kind and address.
    CleanRace {
        /// Race kind of the original first race.
        kind: RaceKind,
        /// Address of the original first race.
        addr: usize,
    },
    /// Any CLEAN race at all.
    AnyCleanRace,
    /// A scheduler-detected deadlock.
    Deadlock,
}

impl Repro {
    /// The reproduction predicate the original failing execution implies.
    pub fn from_execution(exec: &Execution) -> Option<Repro> {
        if let Some((_, r)) = exec.clean_races.first() {
            return Some(Repro::CleanRace {
                kind: r.kind,
                addr: r.addr,
            });
        }
        if exec.deadlock {
            return Some(Repro::Deadlock);
        }
        None
    }

    fn holds(self, exec: &Execution) -> bool {
        match self {
            Repro::CleanRace { kind, addr } => exec
                .clean_races
                .first()
                .is_some_and(|(_, r)| r.kind == kind && r.addr == addr),
            Repro::AnyCleanRace => !exec.clean_races.is_empty(),
            Repro::Deadlock => exec.deadlock,
        }
    }
}

/// Outcome of shrinking.
#[derive(Debug)]
pub struct Shrunk {
    /// The minimal reproducing token.
    pub schedule: Schedule,
    /// The execution it produces under lenient replay.
    pub exec: Execution,
    /// Executions spent searching.
    pub trials: usize,
}

fn try_token(spec: &ProgramSpec, token: &[usize], repro: Repro) -> Option<Execution> {
    let mut picker = ReplayPicker::lenient(token.to_vec());
    let exec = run_schedule(&spec.factory, &spec.cfg, &mut picker, None);
    repro.holds(&exec).then_some(exec)
}

/// Shrinks `schedule` to a minimal token still reproducing `repro`.
///
/// Returns `None` if the original schedule does not reproduce the
/// failure in the first place (lenient replay).
pub fn shrink(spec: &ProgramSpec, schedule: &Schedule, repro: Repro) -> Option<Shrunk> {
    let mut trials = 1;
    let mut best_exec = try_token(spec, &schedule.0, repro)?;
    let mut token = schedule.0.clone();

    // Phase 1: shortest reproducing prefix, by binary search. The
    // predicate is not guaranteed monotone in the prefix length, but
    // every accepted candidate is verified by execution, so a
    // non-monotone boundary only costs minimality, never soundness.
    let (mut lo, mut hi) = (0usize, token.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        trials += 1;
        if let Some(exec) = try_token(spec, &token[..mid], repro) {
            best_exec = exec;
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    token.truncate(hi);

    // Phase 2: thread deletion — drop every choice of one thread in a
    // single candidate. Only threads the remaining token still selects
    // are tried, most frequently chosen first (the biggest possible win
    // per trial); each success removes a whole bystander at once, work
    // chunk deletion would need many entry-wise trials to replicate.
    let mut by_thread: Vec<(usize, usize)> = Vec::new();
    for &t in &token {
        match by_thread.iter_mut().find(|(tid, _)| *tid == t) {
            Some((_, n)) => *n += 1,
            None => by_thread.push((t, 1)),
        }
    }
    by_thread.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    for (t, _) in by_thread {
        if !token.contains(&t) {
            continue;
        }
        let candidate: Vec<usize> = token.iter().copied().filter(|&x| x != t).collect();
        trials += 1;
        if let Some(exec) = try_token(spec, &candidate, repro) {
            best_exec = exec;
            token = candidate;
        }
    }

    // Phase 3: delete chunks of halving size until a fixpoint.
    let mut chunk = (token.len() / 2).max(1);
    while !token.is_empty() {
        let mut removed_any = false;
        let mut start = 0;
        while start < token.len() {
            let end = (start + chunk).min(token.len());
            let mut candidate = Vec::with_capacity(token.len() - (end - start));
            candidate.extend_from_slice(&token[..start]);
            candidate.extend_from_slice(&token[end..]);
            trials += 1;
            if let Some(exec) = try_token(spec, &candidate, repro) {
                best_exec = exec;
                token = candidate;
                removed_any = true;
                // Re-test the same start: the next chunk slid into place.
            } else {
                start = end;
            }
        }
        if !removed_any && chunk == 1 {
            break;
        }
        if !removed_any {
            chunk = (chunk / 2).max(1);
        }
    }

    Some(Shrunk {
        schedule: Schedule(token),
        exec: best_exec,
        trials,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::picker::DefaultPicker;
    use crate::programs::find;
    use crate::vm::run_schedule;

    #[test]
    fn shrink_waw_pair_to_empty_token() {
        // The default schedule of waw_pair already races, so shrinking
        // any racing schedule must reach the empty token.
        let spec = find("waw_pair").unwrap();
        let exec = run_schedule(&spec.factory, &spec.cfg, &mut DefaultPicker, None);
        let repro = Repro::from_execution(&exec).expect("waw_pair races");
        let s = shrink(&spec, &exec.schedule, repro).expect("original reproduces");
        assert!(s.schedule.is_empty(), "shrunk to {}", s.schedule);
        assert!(repro.holds(&s.exec));
    }

    #[test]
    fn shrink_rejects_non_reproducing_schedule() {
        let spec = find("lock_counter").unwrap();
        let exec = run_schedule(&spec.factory, &spec.cfg, &mut DefaultPicker, None);
        assert!(shrink(&spec, &exec.schedule, Repro::AnyCleanRace).is_none());
    }

    #[test]
    fn shrink_drops_bystander_threads() {
        use crate::picker::PctPicker;
        use crate::programs::Expect;
        use crate::vm::VmConfig;
        use std::sync::Arc;

        // The war_probe pair (reader tid 1, writer tid 3) plus a noisy
        // lock-protected bystander (tid 2) whose scheduling never matters
        // to the race. CLEAN only flags the RAW direction (writer first),
        // which the default policy does not produce — the minimal token is
        // non-empty, so surviving bystander choices would be visible.
        let spec = ProgramSpec {
            name: "war_with_bystander",
            about: "unordered read/write pair plus an irrelevant locked worker",
            expect: Expect::Racy,
            cfg: VmConfig {
                max_threads: 4,
                heap_cells: 8,
                max_steps: 512,
                stop_on_race: false,
                ..VmConfig::default()
            },
            factory: Arc::new(|| {
                Box::new(|c| {
                    let m = c.create_mutex();
                    let r = c.spawn(|c| c.read(0))?;
                    let noise = c.spawn(move |c| {
                        for _ in 0..3 {
                            c.lock(m)?;
                            let v = c.read(1)?;
                            c.write(1, v + 1)?;
                            c.unlock(m)?;
                        }
                        Ok(0)
                    })?;
                    let w = c.spawn(|c| {
                        c.write(0, 9)?;
                        Ok(9)
                    })?;
                    c.join(r)?;
                    c.join(noise)?;
                    c.join(w)?;
                    Ok(0)
                })
            }),
        };
        const BYSTANDER: usize = 2;
        let exec = (0..500)
            .find_map(|seed| {
                let mut picker = PctPicker::new(seed, 3, 256);
                let exec = run_schedule(&spec.factory, &spec.cfg, &mut picker, None);
                (!exec.clean_races.is_empty() && exec.schedule.0.contains(&BYSTANDER))
                    .then_some(exec)
            })
            .expect("some PCT schedule hits the RAW direction with bystander choices");
        let repro = Repro::from_execution(&exec).unwrap();
        let s = shrink(&spec, &exec.schedule, repro).expect("original reproduces");
        assert!(repro.holds(&s.exec));
        assert!(
            !s.schedule.0.contains(&BYSTANDER),
            "bystander choices must be deleted, got {}",
            s.schedule
        );
        assert!(
            !s.schedule.is_empty(),
            "the RAW direction needs forced choices; an empty token would \
             make this test vacuous"
        );
    }
}
