//! The controlled-scheduler virtual machine: runs CLEAN programs written
//! against a virtualized thread API (spawn/join, mutex, rwlock, barrier,
//! condvar, instrumented reads/writes) with **every** instrumented
//! operation a yield point, under a scheduler that decides which virtual
//! thread advances at each step.
//!
//! Execution is token-serialized: each virtual thread runs on its own OS
//! thread, but exactly one holds the execution token at any moment. A
//! thread announces its next operation and parks; the scheduler computes
//! the *enabled* set (a `lock` on a held mutex, a `join` on a running
//! thread, a parked barrier arrival are not enabled), asks the
//! [`Picker`](crate::picker::Picker) to choose, and grants exactly one
//! thread, which performs exactly one operation and parks again. Given
//! the same program and the same sequence of choices, an execution is
//! bit-for-bit identical — which is what makes schedules replayable,
//! shrinkable and enumerable.
//!
//! The VM mirrors the happens-before bookkeeping of `clean-runtime`
//! exactly (per-thread vector clocks, lock/barrier clocks, the Section
//! 4.3 check ordering, the pseudo-lock trace encoding of barriers and
//! rwlocks), runs the online [`CleanDetector`] on every access, ticks a
//! real [`Kendo`] table at every yield point (observable through
//! [`clean_sync::SchedHook`]), and records a [`TraceEvent`] log that the
//! offline baseline engines replay for the differential check.

use crate::picker::{Picker, SchedView};
use crate::token::Schedule;
use clean_core::{
    CleanDetector, DetectorConfig, EpochLayout, LockId, RaceReport, ThreadCheckState, ThreadId,
    TraceEvent, VectorClock,
};
use clean_sync::{DetHandle, Kendo, SchedHook};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::time::Duration;

/// Bytes per virtual heap cell (every cell is a `u64`).
pub const CELL_BYTES: usize = 8;

/// How long the scheduler waits for a parked-thread notification before
/// declaring the harness itself wedged (a bug in the VM, not the program).
const QUIESCE_TIMEOUT: Duration = Duration::from_secs(30);

/// The execution was abandoned by the scheduler (depth bound, race stop,
/// or harness shutdown); the virtual thread must unwind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stop;

/// Result alias for virtual-thread operations.
pub type VmResult<T> = Result<T, Stop>;

/// A virtual thread body: runs against the virtualized thread API and
/// returns a deterministic output value.
pub type Body = Box<dyn FnOnce(&mut VCtx) -> VmResult<u64> + Send + 'static>;

/// A re-runnable program: every explored schedule calls the factory for a
/// fresh root body.
pub type ProgramFn = Arc<dyn Fn() -> Body + Send + Sync>;

/// Configuration of one VM execution.
#[derive(Debug, Clone)]
pub struct VmConfig {
    /// Maximum virtual threads over the execution (ids are not reused).
    pub max_threads: usize,
    /// Virtual heap size in 8-byte cells.
    pub heap_cells: usize,
    /// Step (yield-point) bound; executions longer than this are cut off
    /// and marked [`Execution::depth_limited`].
    pub max_steps: usize,
    /// Stop the execution at the first CLEAN race (runtime semantics).
    /// Exploration leaves this off so the trace also exhibits what the
    /// full baseline detectors see *after* CLEAN's exception point.
    pub stop_on_race: bool,
    /// Enable the detector's per-thread SFR write-set filter — the
    /// schedule-exploration differential for the fast path runs every
    /// corpus program with this on and off and demands identical
    /// verdicts.
    pub write_filter: bool,
    /// Enable the detector's thread-local shadow-page cache.
    pub page_cache: bool,
    /// Optional compiled static check plan installed in the VM's
    /// detector — the exploration differential runs corpus programs with
    /// a derived plan on and off and demands identical verdicts.
    pub check_plan: Option<Arc<clean_core::CompiledPlan>>,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            max_threads: 8,
            heap_cells: 64,
            max_steps: 4096,
            stop_on_race: false,
            write_filter: true,
            page_cache: true,
            check_plan: None,
        }
    }
}

/// One instrumented operation — the unit of scheduling. Announced by a
/// virtual thread before parking; the scheduler uses it to decide
/// enabledness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OpKind {
    /// Begin executing the thread body (first segment after spawn).
    Start,
    /// Read a heap cell.
    Read {
        /// Cell index.
        cell: usize,
    },
    /// Write a heap cell.
    Write {
        /// Cell index.
        cell: usize,
    },
    /// Acquire a mutex (enabled iff free).
    Lock(usize),
    /// Release a mutex.
    Unlock(usize),
    /// Acquire a rwlock in shared mode (enabled iff no writer).
    RwRead(usize),
    /// Acquire a rwlock exclusively (enabled iff unheld).
    RwWrite(usize),
    /// Release a shared rwlock hold.
    RwUnlockRead(usize),
    /// Release the exclusive rwlock hold.
    RwUnlockWrite(usize),
    /// Atomically demote the exclusive hold to a shared one (always
    /// enabled — the caller holds the write lock).
    RwDowngrade(usize),
    /// Attempt a mutex acquire without blocking (always enabled; the
    /// outcome — acquired or not — is decided when granted).
    TryLock(usize),
    /// Attempt a shared rwlock acquire without blocking.
    RwTryRead(usize),
    /// Attempt an exclusive rwlock acquire without blocking.
    RwTryWrite(usize),
    /// Arrive at a barrier (the arrival itself is always enabled).
    Barrier(usize),
    /// Leave a barrier after its episode completed.
    BarrierResume(usize),
    /// Release the mutex and enqueue on a condvar.
    CvWait {
        /// The condvar.
        cv: usize,
        /// The mutex released while waiting.
        mutex: usize,
    },
    /// Re-acquire the mutex after a condvar wake-up (enabled iff free).
    CvReacquire {
        /// The mutex to re-acquire.
        mutex: usize,
    },
    /// Wake one condvar waiter.
    CvSignal(usize),
    /// Wake all condvar waiters.
    CvBroadcast(usize),
    /// Create a child thread.
    Spawn,
    /// Join a child (enabled iff it finished).
    Join(usize),
    /// A pure yield point advancing the deterministic counter.
    Tick,
}

impl std::fmt::Display for OpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OpKind::Start => write!(f, "start"),
            OpKind::Read { cell } => write!(f, "read[{cell}]"),
            OpKind::Write { cell } => write!(f, "write[{cell}]"),
            OpKind::Lock(m) => write!(f, "lock(m{m})"),
            OpKind::Unlock(m) => write!(f, "unlock(m{m})"),
            OpKind::RwRead(l) => write!(f, "read_lock(rw{l})"),
            OpKind::RwWrite(l) => write!(f, "write_lock(rw{l})"),
            OpKind::RwUnlockRead(l) => write!(f, "read_unlock(rw{l})"),
            OpKind::RwUnlockWrite(l) => write!(f, "write_unlock(rw{l})"),
            OpKind::RwDowngrade(l) => write!(f, "downgrade(rw{l})"),
            OpKind::TryLock(m) => write!(f, "try_lock(m{m})"),
            OpKind::RwTryRead(l) => write!(f, "try_read(rw{l})"),
            OpKind::RwTryWrite(l) => write!(f, "try_write(rw{l})"),
            OpKind::Barrier(b) => write!(f, "barrier(b{b})"),
            OpKind::BarrierResume(b) => write!(f, "barrier_resume(b{b})"),
            OpKind::CvWait { cv, mutex } => write!(f, "cond_wait(cv{cv},m{mutex})"),
            OpKind::CvReacquire { mutex } => write!(f, "cond_reacquire(m{mutex})"),
            OpKind::CvSignal(cv) => write!(f, "cond_signal(cv{cv})"),
            OpKind::CvBroadcast(cv) => write!(f, "cond_broadcast(cv{cv})"),
            OpKind::Spawn => write!(f, "spawn"),
            OpKind::Join(t) => write!(f, "join(t{t})"),
            OpKind::Tick => write!(f, "tick"),
        }
    }
}

/// What a virtual thread is doing, from the scheduler's point of view.
#[derive(Debug, Clone, Copy)]
enum Pending {
    /// Parked, announcing its next operation.
    Op(OpKind),
    /// Parked inside a barrier episode that has not completed.
    BarrierBlocked(usize),
    /// Parked on a condvar, not yet woken.
    CvBlocked(usize),
    /// The body returned (or unwound); the OS thread is gone.
    Finished,
}

struct VThread {
    pending: Pending,
    vc: VectorClock,
    /// Per-thread fast-path state (SFR write filter + page cache),
    /// flushed on every epoch increment exactly like the runtime's.
    check: ThreadCheckState,
    /// Final vector clock, recorded at exit for the joiner.
    final_vc: Option<VectorClock>,
    /// The body's return value (`None` until finished, or if it was
    /// stopped / panicked).
    result: Option<u64>,
    panicked: bool,
    grant_tx: Sender<()>,
}

struct VmMutex {
    owner: Option<usize>,
    vc: VectorClock,
    id: LockId,
}

struct VmRwLock {
    writer: Option<usize>,
    readers: Vec<usize>,
    /// Published by write-unlocks; absorbed by every acquire.
    write_vc: VectorClock,
    /// Published by read-unlocks; absorbed by write-acquires only.
    read_vc: VectorClock,
    id_w: LockId,
    id_r: LockId,
}

struct VmBarrier {
    parties: usize,
    arrived: Vec<usize>,
    arrivals_vc: VectorClock,
    release_vc: VectorClock,
    id: LockId,
}

struct VmCondvar {
    /// FIFO of `(waiter tid, mutex to re-acquire)`.
    waiters: VecDeque<(usize, usize)>,
}

struct VmData {
    cfg: VmConfig,
    layout: EpochLayout,
    heap: Vec<u64>,
    threads: Vec<VThread>,
    mutexes: Vec<VmMutex>,
    rwlocks: Vec<VmRwLock>,
    barriers: Vec<VmBarrier>,
    condvars: Vec<VmCondvar>,
    next_lock_id: LockId,
    trace: Vec<TraceEvent>,
    clean_races: Vec<(usize, RaceReport)>,
    stop: bool,
    detector: CleanDetector,
    kendo: Arc<Kendo>,
    det_handles: Vec<Option<DetHandle>>,
}

impl VmData {
    fn tid16(t: usize) -> ThreadId {
        ThreadId::new(t as u16)
    }

    fn push_event(&mut self, e: TraceEvent) {
        self.trace.push(e);
    }

    /// Records a CLEAN race on the event just pushed; under runtime
    /// semantics (`stop_on_race`) this also stops the execution.
    fn note_race(&mut self, r: RaceReport) {
        self.clean_races
            .push((self.trace.len().saturating_sub(1), r));
        if self.cfg.stop_on_race {
            self.stop = true;
        }
    }

    /// Advances `t`'s deterministic counter by one event (every
    /// instrumented operation is a deterministic event, as in the
    /// runtime's byte-granular basic-block instrumentation).
    fn tick(&mut self, t: usize) {
        if let Some(h) = self.det_handles[t].as_mut() {
            h.tick(1);
        }
    }

    fn kendo_counter(&self, t: usize) -> u64 {
        self.det_handles[t].as_ref().map_or(0, |h| h.counter())
    }

    /// Starts a new SFR for `t` (release operations and fork/join edges).
    fn increment_own(&mut self, t: usize) {
        self.threads[t]
            .vc
            .increment(Self::tid16(t))
            .expect("sched VM executions never reach clock rollover");
        self.detector
            .drain_check_state(Self::tid16(t), &mut self.threads[t].check);
        self.threads[t].check.on_epoch_increment();
    }
}

struct VmShared {
    data: Mutex<VmData>,
    os_threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// Whether `t`'s announced operation can execute now.
fn is_enabled(d: &VmData, t: usize) -> bool {
    match &d.threads[t].pending {
        Pending::Op(op) => match op {
            OpKind::Lock(m) | OpKind::CvReacquire { mutex: m } => d.mutexes[*m].owner.is_none(),
            OpKind::RwRead(l) => d.rwlocks[*l].writer.is_none(),
            OpKind::RwWrite(l) => {
                d.rwlocks[*l].writer.is_none() && d.rwlocks[*l].readers.is_empty()
            }
            OpKind::Join(c) => matches!(d.threads[*c].pending, Pending::Finished),
            // Try-ops and downgrade are always enabled: a failed try
            // returns `false` instead of blocking, and a downgrade's
            // precondition (holding the write lock) is the caller's.
            _ => true,
        },
        Pending::BarrierBlocked(_) | Pending::CvBlocked(_) | Pending::Finished => false,
    }
}

/// A virtual thread's execution context — the controlled-scheduler
/// equivalent of `clean_runtime::ThreadCtx`. Every method is a yield
/// point.
pub struct VCtx {
    shared: Arc<VmShared>,
    tid: usize,
    yield_tx: Sender<usize>,
    grant_rx: Receiver<()>,
}

impl std::fmt::Debug for VCtx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("VCtx").field("tid", &self.tid).finish()
    }
}

impl VCtx {
    /// This thread's virtual thread id.
    pub fn tid(&self) -> usize {
        self.tid
    }

    /// Parks with the given pending state and waits to be granted the
    /// token. Errors if the execution is being stopped.
    fn park(&mut self, pending: Pending) -> VmResult<()> {
        self.shared.data.lock().threads[self.tid].pending = pending;
        if self.yield_tx.send(self.tid).is_err() {
            return Err(Stop);
        }
        if self.grant_rx.recv().is_err() {
            return Err(Stop);
        }
        if self.shared.data.lock().stop {
            return Err(Stop);
        }
        Ok(())
    }

    fn yield_op(&mut self, op: OpKind) -> VmResult<()> {
        self.park(Pending::Op(op))
    }

    /// A pure yield point: advances the deterministic counter only.
    ///
    /// # Errors
    ///
    /// [`Stop`] if the scheduler is stopping the execution.
    pub fn tick(&mut self) -> VmResult<()> {
        self.yield_op(OpKind::Tick)?;
        self.shared.data.lock().tick(self.tid);
        Ok(())
    }

    /// Reads heap cell `cell` (race-checked after the load, per the
    /// Section 4.3 ordering).
    ///
    /// # Errors
    ///
    /// [`Stop`] if the scheduler is stopping the execution (including a
    /// RAW race under `stop_on_race`).
    pub fn read(&mut self, cell: usize) -> VmResult<u64> {
        self.yield_op(OpKind::Read { cell })?;
        let mut guard = self.shared.data.lock();
        let d = &mut *guard;
        d.tick(self.tid);
        let addr = cell * CELL_BYTES;
        let val = d.heap[cell];
        d.push_event(TraceEvent::Read {
            tid: VmData::tid16(self.tid),
            addr,
            size: CELL_BYTES,
        });
        let thread = &mut d.threads[self.tid];
        let check = d.detector.check_read_with(
            &thread.vc,
            VmData::tid16(self.tid),
            addr,
            CELL_BYTES,
            &mut thread.check,
        );
        if let Err(r) = check {
            d.note_race(r);
            if d.stop {
                return Err(Stop);
            }
        }
        Ok(val)
    }

    /// Writes heap cell `cell` (race-checked before the store).
    ///
    /// # Errors
    ///
    /// [`Stop`] if the scheduler is stopping the execution (including a
    /// WAW race under `stop_on_race`).
    pub fn write(&mut self, cell: usize, value: u64) -> VmResult<()> {
        self.yield_op(OpKind::Write { cell })?;
        let mut guard = self.shared.data.lock();
        let d = &mut *guard;
        d.tick(self.tid);
        let addr = cell * CELL_BYTES;
        d.push_event(TraceEvent::Write {
            tid: VmData::tid16(self.tid),
            addr,
            size: CELL_BYTES,
        });
        let thread = &mut d.threads[self.tid];
        let check = d.detector.check_write_with(
            &thread.vc,
            VmData::tid16(self.tid),
            addr,
            CELL_BYTES,
            &mut thread.check,
        );
        if let Err(r) = check {
            d.note_race(r);
            if d.stop {
                return Err(Stop);
            }
        }
        d.heap[cell] = value;
        Ok(())
    }

    /// Creates a mutex (not a yield point; creation order is already
    /// schedule-determined).
    pub fn create_mutex(&mut self) -> usize {
        let mut d = self.shared.data.lock();
        let id = d.next_lock_id;
        d.next_lock_id += 1;
        let vc = VectorClock::new(d.cfg.max_threads, d.layout);
        d.mutexes.push(VmMutex {
            owner: None,
            vc,
            id,
        });
        d.mutexes.len() - 1
    }

    /// Creates a reader-writer lock.
    pub fn create_rwlock(&mut self) -> usize {
        let mut d = self.shared.data.lock();
        let (id_w, id_r) = (d.next_lock_id, d.next_lock_id + 1);
        d.next_lock_id += 2;
        let write_vc = VectorClock::new(d.cfg.max_threads, d.layout);
        let read_vc = VectorClock::new(d.cfg.max_threads, d.layout);
        d.rwlocks.push(VmRwLock {
            writer: None,
            readers: Vec::new(),
            write_vc,
            read_vc,
            id_w,
            id_r,
        });
        d.rwlocks.len() - 1
    }

    /// Creates a cyclic barrier for `parties` threads.
    ///
    /// # Panics
    ///
    /// Panics if `parties` is zero.
    pub fn create_barrier(&mut self, parties: usize) -> usize {
        assert!(parties > 0, "barrier needs at least one party");
        let mut d = self.shared.data.lock();
        let id = d.next_lock_id;
        d.next_lock_id += 1;
        let arrivals_vc = VectorClock::new(d.cfg.max_threads, d.layout);
        let release_vc = VectorClock::new(d.cfg.max_threads, d.layout);
        d.barriers.push(VmBarrier {
            parties,
            arrived: Vec::new(),
            arrivals_vc,
            release_vc,
            id,
        });
        d.barriers.len() - 1
    }

    /// Creates a condition variable.
    pub fn create_condvar(&mut self) -> usize {
        let mut d = self.shared.data.lock();
        d.condvars.push(VmCondvar {
            waiters: VecDeque::new(),
        });
        d.condvars.len() - 1
    }

    /// Acquires mutex `m` (happens-before acquire edge).
    ///
    /// # Errors
    ///
    /// [`Stop`] if the scheduler is stopping the execution.
    pub fn lock(&mut self, m: usize) -> VmResult<()> {
        self.yield_op(OpKind::Lock(m))?;
        let mut guard = self.shared.data.lock();
        let d = &mut *guard;
        d.tick(self.tid);
        debug_assert!(d.mutexes[m].owner.is_none(), "granted lock on held mutex");
        d.mutexes[m].owner = Some(self.tid);
        let mvc = d.mutexes[m].vc.clone();
        d.threads[self.tid].vc.join(&mvc);
        let lock = d.mutexes[m].id;
        d.push_event(TraceEvent::Acquire {
            tid: VmData::tid16(self.tid),
            lock,
        });
        Ok(())
    }

    /// Releases mutex `m` (happens-before release edge; starts a new SFR).
    ///
    /// # Errors
    ///
    /// [`Stop`] if the scheduler is stopping the execution.
    ///
    /// # Panics
    ///
    /// Panics if this thread does not hold `m`.
    pub fn unlock(&mut self, m: usize) -> VmResult<()> {
        self.yield_op(OpKind::Unlock(m))?;
        let mut guard = self.shared.data.lock();
        let d = &mut *guard;
        d.tick(self.tid);
        assert_eq!(d.mutexes[m].owner, Some(self.tid), "unlock without hold");
        let lock = d.mutexes[m].id;
        d.push_event(TraceEvent::Release {
            tid: VmData::tid16(self.tid),
            lock,
        });
        let tvc = d.threads[self.tid].vc.clone();
        d.mutexes[m].vc.join(&tvc);
        d.increment_own(self.tid);
        d.mutexes[m].owner = None;
        Ok(())
    }

    /// Acquires rwlock `l` in shared mode.
    ///
    /// # Errors
    ///
    /// [`Stop`] if the scheduler is stopping the execution.
    pub fn read_lock(&mut self, l: usize) -> VmResult<()> {
        self.yield_op(OpKind::RwRead(l))?;
        let mut guard = self.shared.data.lock();
        let d = &mut *guard;
        d.tick(self.tid);
        d.rwlocks[l].readers.push(self.tid);
        let wvc = d.rwlocks[l].write_vc.clone();
        d.threads[self.tid].vc.join(&wvc);
        let lock = d.rwlocks[l].id_w;
        d.push_event(TraceEvent::Acquire {
            tid: VmData::tid16(self.tid),
            lock,
        });
        Ok(())
    }

    /// Releases a shared hold of rwlock `l`.
    ///
    /// # Errors
    ///
    /// [`Stop`] if the scheduler is stopping the execution.
    pub fn read_unlock(&mut self, l: usize) -> VmResult<()> {
        self.yield_op(OpKind::RwUnlockRead(l))?;
        let mut guard = self.shared.data.lock();
        let d = &mut *guard;
        d.tick(self.tid);
        let lock = d.rwlocks[l].id_r;
        d.push_event(TraceEvent::Release {
            tid: VmData::tid16(self.tid),
            lock,
        });
        let tvc = d.threads[self.tid].vc.clone();
        d.rwlocks[l].read_vc.join(&tvc);
        d.increment_own(self.tid);
        let pos = d.rwlocks[l]
            .readers
            .iter()
            .position(|&r| r == self.tid)
            .expect("read_unlock without shared hold");
        d.rwlocks[l].readers.swap_remove(pos);
        Ok(())
    }

    /// Acquires rwlock `l` exclusively.
    ///
    /// # Errors
    ///
    /// [`Stop`] if the scheduler is stopping the execution.
    pub fn write_lock(&mut self, l: usize) -> VmResult<()> {
        self.yield_op(OpKind::RwWrite(l))?;
        let mut guard = self.shared.data.lock();
        let d = &mut *guard;
        d.tick(self.tid);
        d.rwlocks[l].writer = Some(self.tid);
        let wvc = d.rwlocks[l].write_vc.clone();
        d.threads[self.tid].vc.join(&wvc);
        let rvc = d.rwlocks[l].read_vc.clone();
        d.threads[self.tid].vc.join(&rvc);
        let (id_w, id_r) = (d.rwlocks[l].id_w, d.rwlocks[l].id_r);
        d.push_event(TraceEvent::Acquire {
            tid: VmData::tid16(self.tid),
            lock: id_w,
        });
        d.push_event(TraceEvent::Acquire {
            tid: VmData::tid16(self.tid),
            lock: id_r,
        });
        Ok(())
    }

    /// Releases the exclusive hold of rwlock `l`.
    ///
    /// # Errors
    ///
    /// [`Stop`] if the scheduler is stopping the execution.
    ///
    /// # Panics
    ///
    /// Panics if this thread does not hold the write lock.
    pub fn write_unlock(&mut self, l: usize) -> VmResult<()> {
        self.yield_op(OpKind::RwUnlockWrite(l))?;
        let mut guard = self.shared.data.lock();
        let d = &mut *guard;
        d.tick(self.tid);
        assert_eq!(
            d.rwlocks[l].writer,
            Some(self.tid),
            "write_unlock without exclusive hold"
        );
        let lock = d.rwlocks[l].id_w;
        d.push_event(TraceEvent::Release {
            tid: VmData::tid16(self.tid),
            lock,
        });
        let tvc = d.threads[self.tid].vc.clone();
        d.rwlocks[l].write_vc.join(&tvc);
        d.increment_own(self.tid);
        d.rwlocks[l].writer = None;
        Ok(())
    }

    /// Atomically demotes this thread's exclusive hold of rwlock `l` to a
    /// shared hold: the write-side release is published (so readers that
    /// acquire afterwards are ordered after the exclusive section) but no
    /// other writer can slip in — this thread is already a reader when
    /// the write lock becomes free.
    ///
    /// # Errors
    ///
    /// [`Stop`] if the scheduler is stopping the execution.
    ///
    /// # Panics
    ///
    /// Panics if this thread does not hold the write lock.
    pub fn downgrade(&mut self, l: usize) -> VmResult<()> {
        self.yield_op(OpKind::RwDowngrade(l))?;
        let mut guard = self.shared.data.lock();
        let d = &mut *guard;
        d.tick(self.tid);
        assert_eq!(
            d.rwlocks[l].writer,
            Some(self.tid),
            "downgrade without exclusive hold"
        );
        // Write-side release edge, exactly as write_unlock publishes it:
        // later read_lock/write_lock acquires of id_w absorb this
        // thread's pre-downgrade knowledge.
        let lock = d.rwlocks[l].id_w;
        d.push_event(TraceEvent::Release {
            tid: VmData::tid16(self.tid),
            lock,
        });
        let tvc = d.threads[self.tid].vc.clone();
        d.rwlocks[l].write_vc.join(&tvc);
        d.increment_own(self.tid);
        // The swap to shared mode is atomic under the VM lock: no
        // write_lock can be granted between clearing the writer and
        // registering as a reader.
        d.rwlocks[l].writer = None;
        d.rwlocks[l].readers.push(self.tid);
        Ok(())
    }

    /// Attempts to acquire mutex `m` without blocking. On success the
    /// acquire edge is identical to [`lock`](Self::lock); on failure no
    /// happens-before edge is created and no trace event is recorded.
    ///
    /// The attempt itself is still a yield point (always enabled), so
    /// schedule exploration covers both outcomes.
    ///
    /// # Errors
    ///
    /// [`Stop`] if the scheduler is stopping the execution.
    pub fn try_lock(&mut self, m: usize) -> VmResult<bool> {
        self.yield_op(OpKind::TryLock(m))?;
        let mut guard = self.shared.data.lock();
        let d = &mut *guard;
        d.tick(self.tid);
        if d.mutexes[m].owner.is_some() {
            return Ok(false);
        }
        d.mutexes[m].owner = Some(self.tid);
        let mvc = d.mutexes[m].vc.clone();
        d.threads[self.tid].vc.join(&mvc);
        let lock = d.mutexes[m].id;
        d.push_event(TraceEvent::Acquire {
            tid: VmData::tid16(self.tid),
            lock,
        });
        Ok(true)
    }

    /// Attempts a shared acquire of rwlock `l` without blocking (see
    /// [`try_lock`](Self::try_lock) for the edge semantics).
    ///
    /// # Errors
    ///
    /// [`Stop`] if the scheduler is stopping the execution.
    pub fn try_read(&mut self, l: usize) -> VmResult<bool> {
        self.yield_op(OpKind::RwTryRead(l))?;
        let mut guard = self.shared.data.lock();
        let d = &mut *guard;
        d.tick(self.tid);
        if d.rwlocks[l].writer.is_some() {
            return Ok(false);
        }
        d.rwlocks[l].readers.push(self.tid);
        let wvc = d.rwlocks[l].write_vc.clone();
        d.threads[self.tid].vc.join(&wvc);
        let lock = d.rwlocks[l].id_w;
        d.push_event(TraceEvent::Acquire {
            tid: VmData::tid16(self.tid),
            lock,
        });
        Ok(true)
    }

    /// Attempts an exclusive acquire of rwlock `l` without blocking (see
    /// [`try_lock`](Self::try_lock) for the edge semantics).
    ///
    /// # Errors
    ///
    /// [`Stop`] if the scheduler is stopping the execution.
    pub fn try_write(&mut self, l: usize) -> VmResult<bool> {
        self.yield_op(OpKind::RwTryWrite(l))?;
        let mut guard = self.shared.data.lock();
        let d = &mut *guard;
        d.tick(self.tid);
        if d.rwlocks[l].writer.is_some() || !d.rwlocks[l].readers.is_empty() {
            return Ok(false);
        }
        d.rwlocks[l].writer = Some(self.tid);
        let wvc = d.rwlocks[l].write_vc.clone();
        d.threads[self.tid].vc.join(&wvc);
        let rvc = d.rwlocks[l].read_vc.clone();
        d.threads[self.tid].vc.join(&rvc);
        let (id_w, id_r) = (d.rwlocks[l].id_w, d.rwlocks[l].id_r);
        d.push_event(TraceEvent::Acquire {
            tid: VmData::tid16(self.tid),
            lock: id_w,
        });
        d.push_event(TraceEvent::Acquire {
            tid: VmData::tid16(self.tid),
            lock: id_r,
        });
        Ok(true)
    }

    /// Waits at barrier `b`; returns `true` for the episode's leader (the
    /// last arriver). All participants leave with the join of all arrival
    /// clocks.
    ///
    /// # Errors
    ///
    /// [`Stop`] if the scheduler is stopping the execution.
    pub fn barrier_wait(&mut self, b: usize) -> VmResult<bool> {
        self.yield_op(OpKind::Barrier(b))?;
        let leader;
        {
            let mut guard = self.shared.data.lock();
            let d = &mut *guard;
            d.tick(self.tid);
            let lock = d.barriers[b].id;
            d.push_event(TraceEvent::Release {
                tid: VmData::tid16(self.tid),
                lock,
            });
            let tvc = d.threads[self.tid].vc.clone();
            d.barriers[b].arrivals_vc.join(&tvc);
            d.barriers[b].arrived.push(self.tid);
            if d.barriers[b].arrived.len() == d.barriers[b].parties {
                // Episode complete: publish the release clock and wake the
                // parked arrivers at the leader's deterministic time.
                let rel = d.barriers[b].arrivals_vc.clone();
                d.barriers[b].release_vc = rel;
                d.barriers[b].arrivals_vc.reset();
                let peers = std::mem::take(&mut d.barriers[b].arrived);
                let resume = d.kendo_counter(self.tid) + 1;
                for p in peers {
                    if p == self.tid {
                        continue;
                    }
                    debug_assert!(
                        matches!(d.threads[p].pending, Pending::BarrierBlocked(bb) if bb == b),
                        "barrier peer not parked at this barrier"
                    );
                    d.threads[p].pending = Pending::Op(OpKind::BarrierResume(b));
                    if let Some(h) = d.det_handles[p].as_mut() {
                        h.include(resume);
                    }
                }
                leader = true;
            } else {
                if let Some(h) = d.det_handles[self.tid].as_mut() {
                    h.exclude();
                }
                leader = false;
            }
        }
        if !leader {
            self.park(Pending::BarrierBlocked(b))?;
        }
        let mut guard = self.shared.data.lock();
        let d = &mut *guard;
        let rel = d.barriers[b].release_vc.clone();
        d.threads[self.tid].vc.join(&rel);
        d.increment_own(self.tid);
        let lock = d.barriers[b].id;
        d.push_event(TraceEvent::Acquire {
            tid: VmData::tid16(self.tid),
            lock,
        });
        Ok(leader)
    }

    /// Releases `m`, waits on condvar `cv`, then re-acquires `m`. The
    /// caller must hold `m` and should re-check its predicate in a loop.
    ///
    /// # Errors
    ///
    /// [`Stop`] if the scheduler is stopping the execution — in that case
    /// `m` is **not** re-acquired.
    ///
    /// # Panics
    ///
    /// Panics if this thread does not hold `m`.
    pub fn cond_wait(&mut self, cv: usize, m: usize) -> VmResult<()> {
        self.yield_op(OpKind::CvWait { cv, mutex: m })?;
        {
            let mut guard = self.shared.data.lock();
            let d = &mut *guard;
            d.tick(self.tid);
            assert_eq!(d.mutexes[m].owner, Some(self.tid), "cond_wait without hold");
            let lock = d.mutexes[m].id;
            d.push_event(TraceEvent::Release {
                tid: VmData::tid16(self.tid),
                lock,
            });
            let tvc = d.threads[self.tid].vc.clone();
            d.mutexes[m].vc.join(&tvc);
            d.increment_own(self.tid);
            d.mutexes[m].owner = None;
            d.condvars[cv].waiters.push_back((self.tid, m));
            if let Some(h) = d.det_handles[self.tid].as_mut() {
                h.exclude();
            }
        }
        self.park(Pending::CvBlocked(cv))?;
        // Woken: a signaller moved us to `CvReacquire(m)`; the grant means
        // the mutex is free now.
        let mut guard = self.shared.data.lock();
        let d = &mut *guard;
        debug_assert!(
            d.mutexes[m].owner.is_none(),
            "granted reacquire on held mutex"
        );
        d.mutexes[m].owner = Some(self.tid);
        let mvc = d.mutexes[m].vc.clone();
        d.threads[self.tid].vc.join(&mvc);
        let lock = d.mutexes[m].id;
        d.push_event(TraceEvent::Acquire {
            tid: VmData::tid16(self.tid),
            lock,
        });
        Ok(())
    }

    /// Wakes the condvar's longest-waiting thread, if any. Call while
    /// holding the associated mutex.
    ///
    /// # Errors
    ///
    /// [`Stop`] if the scheduler is stopping the execution.
    pub fn cond_signal(&mut self, cv: usize) -> VmResult<()> {
        self.yield_op(OpKind::CvSignal(cv))?;
        let mut guard = self.shared.data.lock();
        let d = &mut *guard;
        d.tick(self.tid);
        let resume = d.kendo_counter(self.tid) + 1;
        if let Some((w, m)) = d.condvars[cv].waiters.pop_front() {
            debug_assert!(
                matches!(d.threads[w].pending, Pending::CvBlocked(c) if c == cv),
                "signalled waiter not parked on this condvar"
            );
            d.threads[w].pending = Pending::Op(OpKind::CvReacquire { mutex: m });
            if let Some(h) = d.det_handles[w].as_mut() {
                h.include(resume);
            }
        }
        Ok(())
    }

    /// Wakes all condvar waiters. Call while holding the associated mutex.
    ///
    /// # Errors
    ///
    /// [`Stop`] if the scheduler is stopping the execution.
    pub fn cond_broadcast(&mut self, cv: usize) -> VmResult<()> {
        self.yield_op(OpKind::CvBroadcast(cv))?;
        let mut guard = self.shared.data.lock();
        let d = &mut *guard;
        d.tick(self.tid);
        let resume = d.kendo_counter(self.tid) + 1;
        while let Some((w, m)) = d.condvars[cv].waiters.pop_front() {
            debug_assert!(
                matches!(d.threads[w].pending, Pending::CvBlocked(c) if c == cv),
                "broadcast waiter not parked on this condvar"
            );
            d.threads[w].pending = Pending::Op(OpKind::CvReacquire { mutex: m });
            if let Some(h) = d.det_handles[w].as_mut() {
                h.include(resume);
            }
        }
        Ok(())
    }

    /// Spawns a child virtual thread running `body`.
    ///
    /// # Errors
    ///
    /// [`Stop`] if the scheduler is stopping the execution.
    ///
    /// # Panics
    ///
    /// Panics if the configured thread capacity is exhausted.
    pub fn spawn(
        &mut self,
        body: impl FnOnce(&mut VCtx) -> VmResult<u64> + Send + 'static,
    ) -> VmResult<usize> {
        self.yield_op(OpKind::Spawn)?;
        let (child, grant_rx) = {
            let mut guard = self.shared.data.lock();
            let d = &mut *guard;
            d.tick(self.tid);
            let child = d.threads.len();
            assert!(
                child < d.cfg.max_threads,
                "thread capacity {} exhausted",
                d.cfg.max_threads
            );
            let ctid = VmData::tid16(child);
            // Fork edge: the child inherits the parent's knowledge and
            // starts its first SFR; the fork is a sync op for the parent.
            let mut cvc = d.threads[self.tid].vc.clone();
            cvc.set_clock(ctid, 0);
            cvc.increment(ctid).expect("fresh child clock");
            d.push_event(TraceEvent::Fork {
                parent: VmData::tid16(self.tid),
                child: ctid,
            });
            d.increment_own(self.tid);
            let (grant_tx, grant_rx) = channel();
            d.threads.push(VThread {
                pending: Pending::Op(OpKind::Start),
                vc: cvc,
                check: ThreadCheckState::new(),
                final_vc: None,
                result: None,
                panicked: false,
                grant_tx,
            });
            let parent_counter = d.kendo_counter(self.tid);
            let dh = d.kendo.register(ctid, parent_counter);
            if let Some(h) = d.det_handles[self.tid].as_mut() {
                h.advance();
            }
            d.det_handles.push(Some(dh));
            (child, grant_rx)
        };
        let shared = Arc::clone(&self.shared);
        let yield_tx = self.yield_tx.clone();
        let handle = std::thread::Builder::new()
            .name(format!("vsched-{child}"))
            .spawn(move || vthread_main(shared, child, yield_tx, grant_rx, Box::new(body)))
            .expect("failed to spawn OS thread for virtual thread");
        self.shared.os_threads.lock().push(handle);
        Ok(child)
    }

    /// Joins child `t`, absorbing its happens-before knowledge, and
    /// returns its result value.
    ///
    /// # Errors
    ///
    /// [`Stop`] if the scheduler is stopping the execution, or if the
    /// child itself was stopped or panicked.
    pub fn join(&mut self, t: usize) -> VmResult<u64> {
        self.yield_op(OpKind::Join(t))?;
        let mut guard = self.shared.data.lock();
        let d = &mut *guard;
        d.tick(self.tid);
        let fvc = d.threads[t]
            .final_vc
            .clone()
            .expect("granted join on unfinished child");
        d.threads[self.tid].vc.join(&fvc);
        d.push_event(TraceEvent::Join {
            parent: VmData::tid16(self.tid),
            child: VmData::tid16(t),
        });
        d.increment_own(self.tid);
        d.threads[t].result.ok_or(Stop)
    }
}

/// Entry point of every virtual thread's OS thread.
fn vthread_main(
    shared: Arc<VmShared>,
    tid: usize,
    yield_tx: Sender<usize>,
    grant_rx: Receiver<()>,
    body: Body,
) {
    let mut ctx = VCtx {
        shared,
        tid,
        yield_tx,
        grant_rx,
    };
    // Initial park: the spawner registered us with `Op(Start)`.
    let res = if ctx.yield_tx.send(tid).is_err()
        || ctx.grant_rx.recv().is_err()
        || ctx.shared.data.lock().stop
    {
        Ok(Err(Stop))
    } else {
        catch_unwind(AssertUnwindSafe(|| body(&mut ctx)))
    };
    let mut d = ctx.shared.data.lock();
    let vc = d.threads[tid].vc.clone();
    d.threads[tid].final_vc = Some(vc);
    match res {
        Ok(Ok(v)) => d.threads[tid].result = Some(v),
        Ok(Err(Stop)) => {}
        Err(_) => d.threads[tid].panicked = true,
    }
    d.threads[tid].pending = Pending::Finished;
    // Drop the Kendo handle: the slot leaves turn arbitration for good.
    d.det_handles[tid] = None;
    drop(d);
    let _ = ctx.yield_tx.send(tid);
}

/// The outcome of one controlled execution.
#[derive(Debug)]
pub struct Execution {
    /// The full schedule taken (one thread id per yield point).
    pub schedule: Schedule,
    /// Per step: the chosen index into the enabled set and the enabled
    /// set's size — the DFS explorer's backtracking record.
    pub choice_log: Vec<(usize, usize)>,
    /// Per step: the granted thread and the operation it announced.
    pub ops: Vec<(usize, OpKind)>,
    /// The recorded event trace (CLTR-compatible).
    pub trace: Vec<TraceEvent>,
    /// CLEAN races flagged online, as `(event index, report)`.
    pub clean_races: Vec<(usize, RaceReport)>,
    /// Per-thread body results (`None` for stopped or panicked threads).
    pub results: Vec<Option<u64>>,
    /// Threads whose bodies panicked.
    pub panicked: Vec<usize>,
    /// No enabled thread remained while some were unfinished.
    pub deadlock: bool,
    /// The step bound cut the execution short.
    pub depth_limited: bool,
    /// Set by replay when the forced schedule diverged (strict mode).
    pub divergence: Option<usize>,
    /// Total yield points granted.
    pub steps: usize,
}

impl Execution {
    /// The first CLEAN race of the execution, if any.
    pub fn first_clean_race(&self) -> Option<&(usize, RaceReport)> {
        self.clean_races.first()
    }

    /// A deterministic digest of the observable execution (trace and
    /// results): two runs of the same program under the same schedule
    /// must produce equal digests.
    pub fn digest(&self) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100_0000_01b3);
            }
        };
        for e in &self.trace {
            let (tag, a, b, c) = match *e {
                TraceEvent::Read { tid, addr, size } => {
                    (1, tid.raw() as u64, addr as u64, size as u64)
                }
                TraceEvent::Write { tid, addr, size } => {
                    (2, tid.raw() as u64, addr as u64, size as u64)
                }
                TraceEvent::Acquire { tid, lock } => (3, tid.raw() as u64, lock as u64, 0),
                TraceEvent::Release { tid, lock } => (4, tid.raw() as u64, lock as u64, 0),
                TraceEvent::Fork { parent, child } => {
                    (5, parent.raw() as u64, child.raw() as u64, 0)
                }
                TraceEvent::Join { parent, child } => {
                    (6, parent.raw() as u64, child.raw() as u64, 0)
                }
            };
            mix(tag);
            mix(a);
            mix(b);
            mix(c);
        }
        for r in &self.results {
            mix(r.map_or(u64::MAX, |v| v));
        }
        h
    }
}

/// Runs `program` once under the schedule chosen step-by-step by
/// `picker`, optionally installing `hook` on the execution's Kendo table.
///
/// # Panics
///
/// Panics if the VM harness itself wedges (a granted thread neither
/// parks nor finishes within the internal timeout) — that is a bug in
/// the VM, never a property of the explored program.
pub fn run_schedule(
    program: &ProgramFn,
    cfg: &VmConfig,
    picker: &mut dyn Picker,
    hook: Option<Arc<dyn SchedHook>>,
) -> Execution {
    let layout = EpochLayout::paper_default();
    assert!(
        cfg.max_threads <= layout.max_threads(),
        "max_threads exceeds epoch layout capacity"
    );
    let kendo = Arc::new(Kendo::new(cfg.max_threads));
    if let Some(h) = hook {
        kendo.set_hook(h);
    }
    let detector = CleanDetector::new(
        cfg.heap_cells * CELL_BYTES,
        DetectorConfig::new()
            .layout(layout)
            .write_filter(cfg.write_filter)
            .page_cache(cfg.page_cache)
            .check_plan(cfg.check_plan.clone()),
    );
    let (yield_tx, yield_rx) = channel::<usize>();
    let (root_grant_tx, root_grant_rx) = channel::<()>();

    // Root thread: resumes above retired clock 0 and enters its first SFR.
    let mut root_vc = VectorClock::new(cfg.max_threads, layout);
    root_vc
        .increment(ThreadId::new(0))
        .expect("fresh root clock");
    let root_handle = kendo.register(ThreadId::new(0), 0);

    let data = VmData {
        cfg: cfg.clone(),
        layout,
        heap: vec![0; cfg.heap_cells],
        threads: vec![VThread {
            pending: Pending::Op(OpKind::Start),
            vc: root_vc,
            check: ThreadCheckState::new(),
            final_vc: None,
            result: None,
            panicked: false,
            grant_tx: root_grant_tx,
        }],
        mutexes: Vec::new(),
        rwlocks: Vec::new(),
        barriers: Vec::new(),
        condvars: Vec::new(),
        next_lock_id: 0,
        trace: Vec::new(),
        clean_races: Vec::new(),
        stop: false,
        detector,
        kendo,
        det_handles: vec![Some(root_handle)],
    };
    let shared = Arc::new(VmShared {
        data: Mutex::new(data),
        os_threads: Mutex::new(Vec::new()),
    });

    let body = program();
    {
        let shared2 = Arc::clone(&shared);
        let ytx = yield_tx.clone();
        let handle = std::thread::Builder::new()
            .name("vsched-0".into())
            .spawn(move || vthread_main(shared2, 0, ytx, root_grant_rx, body))
            .expect("failed to spawn root OS thread");
        shared.os_threads.lock().push(handle);
    }

    let quiesce = |n: usize| {
        for _ in 0..n {
            yield_rx
                .recv_timeout(QUIESCE_TIMEOUT)
                .expect("sched VM wedged: granted thread neither parked nor finished");
        }
    };

    let mut schedule = Vec::new();
    let mut choice_log = Vec::new();
    let mut ops = Vec::new();
    let mut deadlock = false;
    let mut depth_limited = false;
    let mut steps = 0usize;
    let mut expect = 1usize;

    loop {
        quiesce(expect);
        let (enabled, all_finished, stopping, counters) = {
            let d = shared.data.lock();
            let enabled: Vec<usize> = (0..d.threads.len())
                .filter(|&i| is_enabled(&d, i))
                .collect();
            let all_finished = d
                .threads
                .iter()
                .all(|t| matches!(t.pending, Pending::Finished));
            let counters: Vec<u64> = (0..d.threads.len())
                .map(|i| d.kendo.published(ThreadId::new(i as u16)))
                .collect();
            (enabled, all_finished, d.stop, counters)
        };
        if all_finished {
            break;
        }
        if stopping {
            stop_all(&shared, &yield_rx);
            break;
        }
        if enabled.is_empty() {
            deadlock = true;
            stop_all(&shared, &yield_rx);
            break;
        }
        if steps >= cfg.max_steps {
            depth_limited = true;
            stop_all(&shared, &yield_rx);
            break;
        }
        let view = SchedView {
            kendo_published: &counters,
        };
        let idx = picker.pick(steps, &enabled, &view).min(enabled.len() - 1);
        let t = enabled[idx];
        let (grant_tx, op) = {
            let d = shared.data.lock();
            let op = match d.threads[t].pending {
                Pending::Op(op) => op,
                _ => unreachable!("enabled thread must announce an op"),
            };
            (d.threads[t].grant_tx.clone(), op)
        };
        schedule.push(t);
        choice_log.push((idx, enabled.len()));
        ops.push((t, op));
        expect = if matches!(op, OpKind::Spawn) { 2 } else { 1 };
        let _ = grant_tx.send(());
        steps += 1;
    }

    for h in shared.os_threads.lock().drain(..) {
        let _ = h.join();
    }

    let d = shared.data.lock();
    Execution {
        schedule: Schedule(schedule),
        choice_log,
        ops,
        trace: d.trace.clone(),
        clean_races: d.clean_races.clone(),
        results: d.threads.iter().map(|t| t.result).collect(),
        panicked: (0..d.threads.len())
            .filter(|&i| d.threads[i].panicked)
            .collect(),
        deadlock,
        depth_limited,
        divergence: None,
        steps,
    }
}

/// Aborts the execution: every parked, unfinished thread is granted once
/// with the stop flag set and unwinds through its `VmResult` chain.
fn stop_all(shared: &Arc<VmShared>, yield_rx: &Receiver<usize>) {
    let pending: Vec<Sender<()>> = {
        let mut d = shared.data.lock();
        d.stop = true;
        d.threads
            .iter()
            .filter(|t| !matches!(t.pending, Pending::Finished))
            .map(|t| t.grant_tx.clone())
            .collect()
    };
    for tx in &pending {
        let _ = tx.send(());
    }
    for _ in 0..pending.len() {
        let _ = yield_rx.recv_timeout(QUIESCE_TIMEOUT);
    }
}
