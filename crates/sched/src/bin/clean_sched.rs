//! `clean-sched` — schedule exploration, replay and shrinking for the
//! CLEAN controlled-scheduler VM.
//!
//! ```text
//! clean-sched list
//! clean-sched explore --program <name> [--mode dfs|pct] [--max N] [--budget-ms N]
//!                     [--seeds N] [--seed-base N] [--depth N]
//!                     [--state <file>] [--artifacts <dir>]
//! clean-sched replay  --program <name> --token <v1:0.1.0.2> [--strict]
//! clean-sched shrink  --program <name> --token <v1:...> [--artifacts <dir>]
//! ```

use clean_sched::explore::{explore_dfs, explore_pct, DfsExplorer, ExploreOpts, Failure};
use clean_sched::picker::ReplayPicker;
use clean_sched::programs::{self, ProgramSpec};
use clean_sched::shrink::{shrink, Repro};
use clean_sched::token::Schedule;
use clean_sched::vm::{run_schedule, Execution};
use std::path::Path;
use std::process::ExitCode;
use std::time::Duration;

const USAGE: &str = "\
clean-sched — controlled-scheduler exploration for CLEAN

USAGE:
  clean-sched list
      The built-in program corpus and each program's expectation.
  clean-sched explore --program <name> [--mode dfs|pct] [--max N] [--budget-ms N]
                      [--seeds N] [--seed-base N] [--depth N]
                      [--state <file>] [--artifacts <dir>]
      Explore the schedule space. dfs (default) enumerates schedules
      exhaustively, persisting the frontier to --state so a later
      invocation resumes where this one stopped; pct runs --seeds
      randomized priority schedules. Every schedule is differentially
      checked (online CLEAN vs offline CLEAN/FastTrack/VcFull). On
      failure, writes a shrunk repro token and a CLTR trace to
      --artifacts (default `sched-artifacts`).
  clean-sched replay --program <name> --token <v1:0.1.0.2> [--strict]
      Re-execute one schedule token and report what happens. --strict
      fails on divergence instead of falling back to the default policy.
  clean-sched shrink --program <name> --token <v1:...> [--artifacts <dir>]
      Reduce a failing schedule to a minimal repro token.
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("list") => cmd_list(&args[1..]),
        Some("explore") => cmd_explore(&args[1..]),
        Some("replay") => cmd_replay(&args[1..]),
        Some("shrink") => cmd_shrink(&args[1..]),
        Some("--help" | "-h") | None => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Some(other) => Err(format!("unknown subcommand {other:?}\n\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// Pulls the value of `--flag value` out of `args`, removing both.
fn take_value(args: &mut Vec<String>, flag: &str) -> Result<Option<String>, String> {
    if let Some(i) = args.iter().position(|a| a == flag) {
        if i + 1 >= args.len() {
            return Err(format!("{flag} needs a value"));
        }
        let v = args.remove(i + 1);
        args.remove(i);
        Ok(Some(v))
    } else {
        Ok(None)
    }
}

/// Pulls a boolean `--flag` out of `args`.
fn take_flag(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(i) = args.iter().position(|a| a == flag) {
        args.remove(i);
        true
    } else {
        false
    }
}

fn parse_num<T: std::str::FromStr>(v: &str, what: &str) -> Result<T, String> {
    v.parse().map_err(|_| format!("bad {what}: {v:?}"))
}

fn take_program(args: &mut Vec<String>) -> Result<ProgramSpec, String> {
    let name = take_value(args, "--program")?.ok_or("need --program <name> (see `list`)")?;
    programs::find(&name).ok_or_else(|| format!("unknown program {name:?} (see `list`)"))
}

fn take_token(args: &mut Vec<String>) -> Result<Schedule, String> {
    let raw = take_value(args, "--token")?.ok_or("need --token <v1:...>")?;
    raw.parse::<Schedule>().map_err(|e| e.to_string())
}

fn reject_extra(args: &[String]) -> Result<(), String> {
    if args.is_empty() {
        Ok(())
    } else {
        Err(format!("unexpected arguments: {args:?}"))
    }
}

fn cmd_list(rest: &[String]) -> Result<(), String> {
    reject_extra(rest)?;
    println!("{:<14} {:<16} description", "program", "expectation");
    for p in programs::registry() {
        println!(
            "{:<14} {:<16} {}",
            p.name,
            format!("{:?}", p.expect),
            p.about
        );
    }
    Ok(())
}

fn describe(exec: &Execution) -> String {
    let mut parts = vec![format!("{} steps", exec.steps)];
    match exec.clean_races.first() {
        Some((i, r)) => parts.push(format!("CLEAN race {} @{:#x} at event {i}", r.kind, r.addr)),
        None => parts.push("no CLEAN race".into()),
    }
    if exec.deadlock {
        parts.push("DEADLOCK".into());
    }
    if exec.depth_limited {
        parts.push("depth-limited".into());
    }
    parts.push(format!("digest {:#018x}", exec.digest()));
    parts.join(", ")
}

/// Writes the failure's repro token and CLTR trace under `dir`.
fn write_artifacts(dir: &str, program: &str, failure: &Failure) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("creating {dir}: {e}"))?;
    let shrunk = Repro::from_execution(&failure.exec)
        .and_then(|r| shrink_spec(program, &failure.schedule, r));
    let (token, label) = match &shrunk {
        Some(s) => (s.schedule.to_string(), "shrunk"),
        None => (failure.schedule.to_string(), "full"),
    };
    let token_path = Path::new(dir).join(format!("{program}.token"));
    let mut body =
        format!("# clean-sched repro ({label} schedule)\n# program: {program}\n# reasons:\n");
    for r in &failure.reasons {
        body.push_str(&format!("#   {r}\n"));
    }
    body.push_str(&token);
    body.push('\n');
    std::fs::write(&token_path, body).map_err(|e| format!("writing token: {e}"))?;
    let trace_path = Path::new(dir).join(format!("{program}.cltr"));
    clean_trace::write_trace(&trace_path, &failure.exec.trace)
        .map_err(|e| format!("writing trace: {e}"))?;
    eprintln!(
        "artifacts: {} ({} yield points, {label}), {}",
        token_path.display(),
        token.split('.').count(),
        trace_path.display()
    );
    Ok(())
}

fn shrink_spec(
    program: &str,
    schedule: &Schedule,
    repro: Repro,
) -> Option<clean_sched::shrink::Shrunk> {
    let spec = programs::find(program)?;
    shrink(&spec, schedule, repro)
}

fn print_report(
    spec: &ProgramSpec,
    report: &clean_sched::ExploreReport,
    artifacts: &str,
) -> Result<(), String> {
    println!(
        "{}: {} schedules explored{}, {} with CLEAN races, {} deadlocks, \
         {} with CLEAN-missed WAR (addrs {:?})",
        spec.name,
        report.schedules,
        if report.complete { " (complete)" } else { "" },
        report.clean_race_schedules,
        report.deadlocks,
        report.war_miss_schedules,
        report.war_miss_addrs,
    );
    if report.ok() {
        println!("all schedules met expectation {:?}", spec.expect);
        return Ok(());
    }
    for f in &report.failures {
        eprintln!("FAILED schedule {}:", f.schedule);
        for r in &f.reasons {
            eprintln!("  - {r}");
        }
    }
    if let Some(first) = report.failures.first() {
        write_artifacts(artifacts, spec.name, first)?;
    }
    Err(format!(
        "{} of {} schedules violated expectation {:?}",
        report.failures.len(),
        report.schedules,
        spec.expect
    ))
}

fn cmd_explore(rest: &[String]) -> Result<(), String> {
    let mut args = rest.to_vec();
    let spec = take_program(&mut args)?;
    let mode = take_value(&mut args, "--mode")?.unwrap_or_else(|| "dfs".into());
    let max = match take_value(&mut args, "--max")? {
        Some(v) => parse_num(&v, "--max")?,
        None => 10_000usize,
    };
    let budget = take_value(&mut args, "--budget-ms")?
        .map(|v| parse_num::<u64>(&v, "--budget-ms"))
        .transpose()?
        .map(Duration::from_millis);
    let seeds = match take_value(&mut args, "--seeds")? {
        Some(v) => parse_num(&v, "--seeds")?,
        None => 1000usize,
    };
    let seed_base = match take_value(&mut args, "--seed-base")? {
        Some(v) => parse_num(&v, "--seed-base")?,
        None => 0u64,
    };
    let depth = match take_value(&mut args, "--depth")? {
        Some(v) => parse_num(&v, "--depth")?,
        None => 3usize,
    };
    let state_file = take_value(&mut args, "--state")?;
    let artifacts =
        take_value(&mut args, "--artifacts")?.unwrap_or_else(|| "sched-artifacts".into());
    reject_extra(&args)?;
    let opts = ExploreOpts {
        max_schedules: max,
        time_budget: budget,
    };
    let report = match mode.as_str() {
        "dfs" => {
            let mut frontier = match &state_file {
                Some(p) if Path::new(p).exists() => {
                    let s = std::fs::read_to_string(p).map_err(|e| format!("reading {p}: {e}"))?;
                    let f = DfsExplorer::from_state(&s)?;
                    eprintln!(
                        "resuming DFS at {} explored, frontier {:?}",
                        f.explored,
                        f.next_prefix()
                    );
                    f
                }
                _ => DfsExplorer::new(),
            };
            let report = explore_dfs(&spec, &mut frontier, &opts);
            if let Some(p) = &state_file {
                if let Some(dir) = Path::new(p).parent().filter(|d| !d.as_os_str().is_empty()) {
                    std::fs::create_dir_all(dir)
                        .map_err(|e| format!("creating {}: {e}", dir.display()))?;
                }
                std::fs::write(p, frontier.state()).map_err(|e| format!("writing {p}: {e}"))?;
                eprintln!(
                    "DFS frontier saved to {p} ({} explored total{})",
                    frontier.explored,
                    if frontier.exhausted() {
                        ", exhausted"
                    } else {
                        ""
                    }
                );
            }
            report
        }
        "pct" => explore_pct(&spec, seed_base, seeds, depth, &opts),
        other => return Err(format!("unknown --mode {other:?} (dfs|pct)")),
    };
    print_report(&spec, &report, &artifacts)
}

fn cmd_replay(rest: &[String]) -> Result<(), String> {
    let mut args = rest.to_vec();
    let spec = take_program(&mut args)?;
    let token = take_token(&mut args)?;
    let strict = take_flag(&mut args, "--strict");
    reject_extra(&args)?;
    let mut picker = if strict {
        ReplayPicker::strict(token.0.clone())
    } else {
        ReplayPicker::lenient(token.0.clone())
    };
    let mut exec = run_schedule(&spec.factory, &spec.cfg, &mut picker, None);
    exec.divergence = picker.divergence;
    println!("schedule {}", exec.schedule);
    println!("{}", describe(&exec));
    if strict {
        if let Some(step) = exec.divergence {
            return Err(format!("replay diverged from token at step {step}"));
        }
    }
    Ok(())
}

fn cmd_shrink(rest: &[String]) -> Result<(), String> {
    let mut args = rest.to_vec();
    let spec = take_program(&mut args)?;
    let token = take_token(&mut args)?;
    let artifacts = take_value(&mut args, "--artifacts")?;
    reject_extra(&args)?;
    let mut picker = ReplayPicker::lenient(token.0.clone());
    let exec = run_schedule(&spec.factory, &spec.cfg, &mut picker, None);
    let repro = Repro::from_execution(&exec).ok_or_else(|| {
        format!(
            "token does not reproduce a failure on {} ({})",
            spec.name,
            describe(&exec)
        )
    })?;
    let s =
        shrink(&spec, &token, repro).ok_or("schedule stopped reproducing under lenient replay")?;
    println!(
        "shrunk {} -> {} ({} -> {} yield points, {} trials)",
        token,
        s.schedule,
        token.len(),
        s.schedule.len(),
        s.trials
    );
    println!("repro: {repro:?}");
    println!("{}", describe(&s.exec));
    if let Some(dir) = artifacts {
        let failure = Failure {
            schedule: s.schedule.clone(),
            reasons: vec![format!("{repro:?}")],
            exec: s.exec,
        };
        write_artifacts(&dir, spec.name, &failure)?;
    }
    Ok(())
}
