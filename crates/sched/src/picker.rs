//! Schedule pickers: the policies that choose, at each yield point, which
//! enabled virtual thread advances.
//!
//! A picker sees the step number, the enabled set (virtual thread ids,
//! ascending) and a [`SchedView`] of the execution's deterministic state,
//! and returns an index into the enabled set. The three exploration modes
//! of the ISSUE map onto [`DfsPicker`] (bounded-exhaustive enumeration),
//! [`PctPicker`] (randomized priority scheduling) and [`ReplayPicker`]
//! (forced replay of a recorded token); [`DetPicker`] drives scheduling by
//! the Kendo deterministic logical clocks themselves.

use rand::prelude::*;

/// Read-only view of deterministic scheduler state at a yield point.
#[derive(Debug)]
pub struct SchedView<'a> {
    /// Published Kendo counter per virtual thread id
    /// ([`clean_sync::EXCLUDED`] for blocked/finished slots).
    pub kendo_published: &'a [u64],
}

/// A scheduling policy.
pub trait Picker {
    /// Chooses an index into `enabled` (non-empty, ascending thread ids)
    /// for yield point `step`. Out-of-range returns are clamped by the VM.
    fn pick(&mut self, step: usize, enabled: &[usize], view: &SchedView<'_>) -> usize;
}

/// The deterministic default policy: always the lowest enabled thread id.
/// Replay falls back to this policy beyond the forced prefix, which is
/// what makes shrunk tokens short.
#[derive(Debug, Default, Clone)]
pub struct DefaultPicker;

impl Picker for DefaultPicker {
    fn pick(&mut self, _step: usize, _enabled: &[usize], _view: &SchedView<'_>) -> usize {
        0
    }
}

/// Bounded-exhaustive DFS: forces a prefix of *choice indices* (indices
/// into each step's enabled set, not thread ids) recorded from a previous
/// execution's [`Execution::choice_log`](crate::vm::Execution::choice_log),
/// then follows the default policy. The explorer advances the prefix
/// lexicographically to enumerate every schedule.
#[derive(Debug, Clone, Default)]
pub struct DfsPicker {
    forced: Vec<usize>,
    pos: usize,
}

impl DfsPicker {
    /// Forces the given choice-index prefix.
    pub fn new(forced: Vec<usize>) -> Self {
        DfsPicker { forced, pos: 0 }
    }
}

impl Picker for DfsPicker {
    fn pick(&mut self, _step: usize, enabled: &[usize], _view: &SchedView<'_>) -> usize {
        let i = if self.pos < self.forced.len() {
            self.forced[self.pos].min(enabled.len() - 1)
        } else {
            0
        };
        self.pos += 1;
        i
    }
}

/// PCT-style randomized priority scheduling (Burckhardt et al., ASPLOS
/// 2010): every thread gets a random high priority; the highest-priority
/// enabled thread always runs; at `depth - 1` random change points the
/// running thread's priority drops below all others. For a bug of depth
/// `d` in a program with `n` threads and `k` steps, a single run finds it
/// with probability ≥ 1/(n·k^(d-1)).
#[derive(Debug, Clone)]
pub struct PctPicker {
    priorities: Vec<u64>,
    change_points: Vec<usize>,
    next_low: u64,
    rng: SmallRng,
}

impl PctPicker {
    /// Builds the policy for one run: `seed` fixes all random choices,
    /// `depth` is the targeted bug depth (≥ 1), `expected_steps` bounds
    /// the range the change points are drawn from.
    pub fn new(seed: u64, depth: usize, expected_steps: usize) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let depth = depth.max(1);
        let span = expected_steps.max(1);
        let mut change_points: Vec<usize> = (1..depth).map(|_| rng.gen_range(0..span)).collect();
        change_points.sort_unstable();
        PctPicker {
            priorities: Vec::new(),
            change_points,
            // Low priorities count down from just below the initial band.
            next_low: depth as u64,
            rng,
        }
    }

    fn priority(&mut self, tid: usize) -> u64 {
        while self.priorities.len() <= tid {
            // Initial priorities live above every possible change-point
            // priority (which are < depth ≤ initial next_low).
            let p = self.rng.gen_range(1u64 << 32..u64::MAX);
            self.priorities.push(p);
        }
        self.priorities[tid]
    }
}

impl Picker for PctPicker {
    fn pick(&mut self, step: usize, enabled: &[usize], _view: &SchedView<'_>) -> usize {
        let best = (0..enabled.len())
            .max_by_key(|&i| self.priority(enabled[i]))
            .unwrap_or(0);
        if self.change_points.binary_search(&step).is_ok() {
            // Change point: demote the thread that would have run.
            self.next_low = self.next_low.saturating_sub(1);
            let t = enabled[best];
            self.priorities[t] = self.next_low;
            return (0..enabled.len())
                .max_by_key(|&i| self.priority(enabled[i]))
                .unwrap_or(0);
        }
        best
    }
}

/// Replays a recorded schedule token (thread ids per yield point).
///
/// In strict mode, a token entry naming a thread that is not enabled at
/// that step is a *divergence*: it is recorded and the rest of the run
/// follows the default policy. In lenient mode (used by the shrinker),
/// unusable entries are skipped, so a subsequence of a failing schedule is
/// still a meaningful schedule.
#[derive(Debug, Clone)]
pub struct ReplayPicker {
    token: Vec<usize>,
    pos: usize,
    lenient: bool,
    /// First step at which strict replay diverged, if any.
    pub divergence: Option<usize>,
}

impl ReplayPicker {
    /// Strict replay of `token`.
    pub fn strict(token: Vec<usize>) -> Self {
        ReplayPicker {
            token,
            pos: 0,
            lenient: false,
            divergence: None,
        }
    }

    /// Lenient replay of `token` (skip unusable entries).
    pub fn lenient(token: Vec<usize>) -> Self {
        ReplayPicker {
            token,
            pos: 0,
            lenient: true,
            divergence: None,
        }
    }
}

impl Picker for ReplayPicker {
    fn pick(&mut self, step: usize, enabled: &[usize], _view: &SchedView<'_>) -> usize {
        while self.pos < self.token.len() {
            let want = self.token[self.pos];
            self.pos += 1;
            if let Some(i) = enabled.iter().position(|&t| t == want) {
                return i;
            }
            if !self.lenient {
                if self.divergence.is_none() {
                    self.divergence = Some(step);
                }
                return 0;
            }
            // Lenient: drop the unusable entry and try the next.
        }
        0
    }
}

/// Schedules by the Kendo deterministic logical clocks: always the
/// enabled thread with the minimum published counter (tid-tie-broken) —
/// the schedule the deterministic runtime itself would produce. Running a
/// race-free program under this picker from different starting points
/// must yield identical executions (the paper's determinism claim).
#[derive(Debug, Default, Clone)]
pub struct DetPicker;

impl Picker for DetPicker {
    fn pick(&mut self, _step: usize, enabled: &[usize], view: &SchedView<'_>) -> usize {
        let mut best = 0;
        for (i, &t) in enabled.iter().enumerate() {
            let c = view.kendo_published.get(t).copied().unwrap_or(u64::MAX);
            let b = view
                .kendo_published
                .get(enabled[best])
                .copied()
                .unwrap_or(u64::MAX);
            // Strict < keeps the lowest tid on ties (enabled is ascending).
            if c < b {
                best = i;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view() -> SchedView<'static> {
        SchedView {
            kendo_published: &[],
        }
    }

    #[test]
    fn dfs_forces_prefix_then_defaults() {
        let mut p = DfsPicker::new(vec![2, 1]);
        assert_eq!(p.pick(0, &[0, 1, 2], &view()), 2);
        assert_eq!(p.pick(1, &[0, 1], &view()), 1);
        assert_eq!(p.pick(2, &[0, 1], &view()), 0);
    }

    #[test]
    fn dfs_clamps_to_enabled() {
        let mut p = DfsPicker::new(vec![5]);
        assert_eq!(p.pick(0, &[0, 1], &view()), 1);
    }

    #[test]
    fn strict_replay_records_divergence() {
        let mut p = ReplayPicker::strict(vec![1, 2]);
        assert_eq!(p.pick(0, &[0, 1], &view()), 1);
        assert_eq!(p.pick(1, &[0, 1], &view()), 0, "2 not enabled: default");
        assert_eq!(p.divergence, Some(1));
    }

    #[test]
    fn lenient_replay_skips_unusable() {
        let mut p = ReplayPicker::lenient(vec![2, 1, 0]);
        assert_eq!(p.pick(0, &[0, 1], &view()), 1, "2 skipped, 1 usable");
        assert_eq!(p.divergence, None);
        assert_eq!(p.pick(1, &[0, 1], &view()), 0);
    }

    #[test]
    fn pct_same_seed_same_choices() {
        let mk = || PctPicker::new(7, 3, 50);
        let (mut a, mut b) = (mk(), mk());
        for step in 0..50 {
            let en = [0, 1, 2];
            assert_eq!(a.pick(step, &en, &view()), b.pick(step, &en, &view()));
        }
    }

    #[test]
    fn det_picker_follows_min_counter() {
        let counters = [10u64, 3, u64::MAX];
        let v = SchedView {
            kendo_published: &counters,
        };
        let mut p = DetPicker;
        assert_eq!(p.pick(0, &[0, 1, 2], &v), 1);
        assert_eq!(p.pick(0, &[0, 2], &v), 0);
    }
}
