//! Differential race detection over explored schedules.
//!
//! Every execution produced by the VM carries two verdicts on the same
//! interleaving: the *online* CLEAN detector that ran during execution,
//! and the offline engines (the CLEAN trace engine, FastTrack, and the
//! two-vector-clock reference detector) replaying the recorded trace.
//! The CLEAN semantics (Section 3 of the paper) pin down exactly how they
//! must relate on every schedule:
//!
//! * online CLEAN and the CLEAN trace engine see the same trace, so their
//!   first races must be identical (index, kind, address);
//! * the first WAW/RAW race of the reference detector must be CLEAN's
//!   first race — CLEAN is *precise* for the classes it detects;
//! * every race the reference detector finds and CLEAN does not must be a
//!   WAR — the one class CLEAN deliberately gives up.

use crate::vm::Execution;
use clean_baselines::{FoundRace, FullRaceKind};
use clean_core::RaceKind;
use clean_trace::EngineKind;

/// One offline engine's verdict on a trace.
#[derive(Debug)]
pub struct EngineRun {
    /// Engine name (`clean` / `fasttrack` / `vcfull`).
    pub name: &'static str,
    /// Every race, tagged with the index of the completing event.
    pub races: Vec<(usize, FoundRace)>,
}

/// The differential verdict on one execution.
#[derive(Debug)]
pub struct DiffReport {
    /// Offline engine verdicts.
    pub engines: Vec<EngineRun>,
    /// Semantics violations (must be empty for a correct detector stack).
    pub violations: Vec<String>,
    /// Races found by the reference detector on addresses CLEAN never
    /// flagged — by construction all WAR, CLEAN's deliberate blind spot.
    pub war_misses: Vec<(usize, FoundRace)>,
}

impl DiffReport {
    /// True if the execution exposed no detector-semantics violation.
    pub fn ok(&self) -> bool {
        self.violations.is_empty()
    }
}

fn run_engine(kind: EngineKind, exec: &Execution, threads: usize) -> EngineRun {
    let mut det = kind.build(threads);
    let mut races = Vec::new();
    for (i, e) in exec.trace.iter().enumerate() {
        for r in det.process(e) {
            races.push((i, r));
        }
    }
    EngineRun {
        name: match kind {
            EngineKind::Clean => "clean",
            EngineKind::FastTrack => "fasttrack",
            EngineKind::VcFull => "vcfull",
            EngineKind::Tsan => "tsan",
        },
        races,
    }
}

fn kinds_match(online: RaceKind, offline: FullRaceKind) -> bool {
    matches!(
        (online, offline),
        (RaceKind::WriteAfterWrite, FullRaceKind::Waw)
            | (RaceKind::ReadAfterWrite, FullRaceKind::Raw)
    )
}

/// Replays `exec.trace` through the offline engines and cross-checks them
/// against the online CLEAN verdict recorded during the execution.
pub fn check(exec: &Execution, threads: usize) -> DiffReport {
    let clean = run_engine(EngineKind::Clean, exec, threads);
    let fasttrack = run_engine(EngineKind::FastTrack, exec, threads);
    let vcfull = run_engine(EngineKind::VcFull, exec, threads);
    let mut violations = Vec::new();

    // 1. Online CLEAN vs the CLEAN trace engine: same trace, same
    //    algorithm — the first race must match exactly.
    let online_first = exec.clean_races.first();
    match (online_first, clean.races.first()) {
        (None, None) => {}
        (Some((oi, or)), Some((ei, er))) => {
            if oi != ei || or.addr != er.addr || !kinds_match(or.kind, er.kind) {
                violations.push(format!(
                    "online CLEAN first race (event {oi}, {} @{:#x}) != trace engine \
                     (event {ei}, {} @{:#x})",
                    or.kind, or.addr, er.kind, er.addr
                ));
            }
        }
        (Some((oi, or)), None) => violations.push(format!(
            "online CLEAN flagged {} @{:#x} at event {oi}; trace engine found nothing",
            or.kind, or.addr
        )),
        (None, Some((ei, er))) => violations.push(format!(
            "trace engine flagged {} @{:#x} at event {ei}; online CLEAN found nothing",
            er.kind, er.addr
        )),
    }

    // 2. Precision for WAW/RAW: the reference detector's first non-WAR
    //    race must be CLEAN's first race, same event and address.
    let vc_first_hard = vcfull
        .races
        .iter()
        .find(|(_, r)| r.kind != FullRaceKind::War);
    match (online_first, vc_first_hard) {
        (None, Some((vi, vr))) => violations.push(format!(
            "CLEAN missed a non-WAR race: vcfull {} @{:#x} at event {vi}",
            vr.kind, vr.addr
        )),
        (Some((oi, or)), Some((vi, vr))) => {
            if oi != vi || or.addr != vr.addr || !kinds_match(or.kind, vr.kind) {
                violations.push(format!(
                    "first WAW/RAW disagrees: online (event {oi}, {} @{:#x}) vs vcfull \
                     (event {vi}, {} @{:#x})",
                    or.kind, or.addr, vr.kind, vr.addr
                ));
            }
        }
        (Some((oi, or)), None) => violations.push(format!(
            "online CLEAN flagged {} @{:#x} at event {oi} but the reference detector \
             found no WAW/RAW at all",
            or.kind, or.addr
        )),
        (None, None) => {}
    }

    // 3. FastTrack and the reference detector are both full precise
    //    detectors: their first races must agree.
    match (fasttrack.races.first(), vcfull.races.first()) {
        (None, None) => {}
        (Some((fi, fr)), Some((vi, vr))) => {
            if fi != vi || fr.kind != vr.kind || fr.addr != vr.addr {
                violations.push(format!(
                    "fasttrack first race (event {fi}, {} @{:#x}) != vcfull \
                     (event {vi}, {} @{:#x})",
                    fr.kind, fr.addr, vr.kind, vr.addr
                ));
            }
        }
        (f, v) => violations.push(format!(
            "fasttrack and vcfull disagree on whether the trace races: {f:?} vs {v:?}"
        )),
    }

    // 4. Everything CLEAN never flags (by address, over the whole
    //    execution) must be WAR-only.
    let mut war_misses = Vec::new();
    for &(i, r) in &vcfull.races {
        let clean_saw_addr = exec.clean_races.iter().any(|(_, o)| o.addr == r.addr);
        if !clean_saw_addr {
            if r.kind != FullRaceKind::War {
                violations.push(format!(
                    "CLEAN never flagged address {:#x} but vcfull found a {} there \
                     (event {i})",
                    r.addr, r.kind
                ));
            } else {
                war_misses.push((i, r));
            }
        }
    }

    DiffReport {
        engines: vec![clean, fasttrack, vcfull],
        violations,
        war_misses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::picker::DefaultPicker;
    use crate::programs::find;
    use crate::vm::run_schedule;

    #[test]
    fn race_free_program_yields_clean_diff() {
        let p = find("lock_counter").unwrap();
        let exec = run_schedule(&p.factory, &p.cfg, &mut DefaultPicker, None);
        assert!(exec.clean_races.is_empty(), "{:?}", exec.clean_races);
        let diff = check(&exec, p.cfg.max_threads);
        assert!(diff.ok(), "{:?}", diff.violations);
        assert!(diff.war_misses.is_empty());
    }

    #[test]
    fn racy_program_agrees_across_detectors() {
        let p = find("waw_pair").unwrap();
        let exec = run_schedule(&p.factory, &p.cfg, &mut DefaultPicker, None);
        assert!(!exec.clean_races.is_empty(), "waw_pair must race");
        let diff = check(&exec, p.cfg.max_threads);
        assert!(diff.ok(), "{:?}", diff.violations);
    }
}
