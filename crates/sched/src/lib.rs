//! # clean-sched
//!
//! Controlled-scheduler model checking for CLEAN: a loom/CHESS-style
//! virtual machine that runs small concurrent programs under a
//! virtualized thread API where **every** instrumented operation is a
//! yield point, plus exploration drivers that enumerate or sample the
//! schedule space and check CLEAN's guarantees on every interleaving.
//!
//! The paper's claims are *for-all-schedules* claims: CLEAN flags a WAW
//! or RAW race on the first racy access of every execution, misses only
//! WAR, and (with deterministic synchronization) makes exception-free
//! executions deterministic. A single OS-scheduled run cannot test such a
//! claim; enumerating the schedule space can. The pieces:
//!
//! * [`vm`] — the token-serialized VM ([`vm::VCtx`], [`vm::run_schedule`])
//!   with the online [`clean_core::CleanDetector`], runtime-identical
//!   vector-clock bookkeeping, trace recording, and a live
//!   [`clean_sync::Kendo`] table observable through
//!   [`clean_sync::SchedHook`];
//! * [`picker`] — scheduling policies: DFS, PCT, replay, Kendo-driven;
//! * [`token`] — the portable `v1:0.1.0.2` schedule token;
//! * [`explore`] — bounded-exhaustive DFS with a persistable, resumable
//!   frontier, and seeded PCT sweeps, both differentially checked;
//! * [`differential`] — online CLEAN vs offline CLEAN/FastTrack/VcFull
//!   agreement on every explored trace;
//! * [`shrink`] — reduction of failing schedules to minimal repro tokens;
//! * [`programs`] — the built-in corpus, including the seeded
//!   `racy_probe` kernel of the acceptance criteria.
//!
//! # Quick example
//!
//! ```
//! use clean_sched::explore::{explore_dfs, DfsExplorer, ExploreOpts};
//! use clean_sched::programs;
//!
//! let spec = programs::find("racy_probe").unwrap();
//! let mut frontier = DfsExplorer::new();
//! let report = explore_dfs(&spec, &mut frontier, &ExploreOpts::default());
//! assert!(report.complete, "small kernel: DFS exhausts the space");
//! assert!(report.ok(), "{:?}", report.failures);
//! // CLEAN flags the seeded WAW/RAW on every single schedule...
//! assert_eq!(report.clean_race_schedules, report.schedules);
//! // ...and the cell-1 WAR shows up as missed-by-CLEAN-only on the
//! // read-before-write schedules.
//! assert!(report.war_miss_schedules > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod differential;
pub mod explore;
pub mod picker;
pub mod programs;
pub mod shrink;
pub mod token;
pub mod vm;

pub use explore::{explore_dfs, explore_pct, DfsExplorer, ExploreOpts, ExploreReport};
pub use picker::{DefaultPicker, DetPicker, DfsPicker, PctPicker, Picker, ReplayPicker, SchedView};
pub use programs::{Expect, ProgramSpec};
pub use shrink::{shrink, Repro, Shrunk};
pub use token::{Schedule, TokenParseError};
pub use vm::{run_schedule, Execution, OpKind, ProgramFn, Stop, VCtx, VmConfig, VmResult};
