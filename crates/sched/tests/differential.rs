//! Integration tests of the differential detector checks across explored
//! schedules: CLEAN agrees with the full detectors on WAW/RAW, and the
//! races it misses are WAR-only — aggregated over the whole schedule
//! space, per the acceptance criteria.

use clean_baselines::FullRaceKind;
use clean_sched::differential::check;
use clean_sched::explore::{explore_dfs, explore_pct, DfsExplorer, ExploreOpts};
use clean_sched::picker::DefaultPicker;
use clean_sched::programs::find;
use clean_sched::vm::{run_schedule, CELL_BYTES};

#[test]
fn racy_probe_cell1_war_is_missed_by_clean_only() {
    let spec = find("racy_probe").unwrap();
    let mut frontier = DfsExplorer::new();
    let report = explore_dfs(&spec, &mut frontier, &ExploreOpts::default());
    assert!(report.complete);
    assert!(report.ok(), "{:#?}", report.failures);
    // On the read-before-write schedules, cell 1's race manifests as WAR
    // — flagged by the reference detector, skipped by CLEAN.
    assert!(
        report.war_miss_schedules > 0,
        "no schedule exposed the WAR-direction miss"
    );
    assert!(
        report.war_miss_schedules < report.schedules,
        "the write-first schedules turn cell 1 into a RAW that CLEAN flags"
    );
    assert_eq!(
        report.war_miss_addrs,
        vec![CELL_BYTES],
        "the only CLEAN-missed address must be cell 1"
    );
}

#[test]
fn war_probe_race_is_schedule_direction_dependent() {
    let spec = find("war_probe").unwrap();
    let mut frontier = DfsExplorer::new();
    let report = explore_dfs(&spec, &mut frontier, &ExploreOpts::default());
    assert!(report.complete);
    assert!(report.ok(), "{:#?}", report.failures);
    // Read-first schedules: WAR, missed by CLEAN. Write-first: RAW,
    // flagged. Both directions must occur in an exhaustive enumeration.
    assert!(report.war_miss_schedules > 0, "no WAR-direction schedule");
    assert!(report.clean_race_schedules > 0, "no RAW-direction schedule");
    assert_eq!(
        report.war_miss_schedules + report.clean_race_schedules,
        report.schedules,
        "every schedule races one way or the other"
    );
}

#[test]
fn clean_flags_the_first_racy_access() {
    // The online CLEAN race must sit on the *first* racy access of the
    // trace: the same event where the reference detector reports its
    // first non-WAR race.
    let spec = find("racy_probe").unwrap();
    let exec = run_schedule(&spec.factory, &spec.cfg, &mut DefaultPicker, None);
    let (online_idx, online) = exec.clean_races.first().expect("racy_probe races");
    let diff = check(&exec, spec.cfg.max_threads);
    assert!(diff.ok(), "{:#?}", diff.violations);
    let vcfull = diff.engines.iter().find(|e| e.name == "vcfull").unwrap();
    let (ref_idx, ref_race) = vcfull
        .races
        .iter()
        .find(|(_, r)| r.kind != FullRaceKind::War)
        .expect("reference detector sees the race");
    assert_eq!(online_idx, ref_idx);
    assert_eq!(online.addr, ref_race.addr);
}

#[test]
fn differential_clean_on_race_free_programs_under_pct() {
    for name in ["lock_counter", "barrier_phase", "rw_shared", "cv_handoff"] {
        let spec = find(name).unwrap();
        let report = explore_pct(&spec, 7, 100, 3, &ExploreOpts::default());
        assert_eq!(report.schedules, 100, "{name}");
        assert!(report.ok(), "{name}: {:#?}", report.failures);
        assert_eq!(report.war_miss_schedules, 0, "{name}");
    }
}

#[test]
fn fast_path_filter_never_changes_verdicts_on_the_corpus() {
    // The SFR write filter and shadow-page cache must be verdict-neutral:
    // with `stop_on_race` off the same PCT seed yields the same schedule
    // whether the fast path is on or not, so the executions are directly
    // comparable — identical schedules, digests, and race lists.
    use clean_sched::picker::PctPicker;
    use clean_sched::programs::registry;

    for spec in registry() {
        let mut on_cfg = spec.cfg.clone();
        on_cfg.write_filter = true;
        on_cfg.page_cache = true;
        let mut off_cfg = spec.cfg.clone();
        off_cfg.write_filter = false;
        off_cfg.page_cache = false;
        for seed in 0..20u64 {
            let mut p_on = PctPicker::new(seed, 3, spec.cfg.max_steps.min(256));
            let on = run_schedule(&spec.factory, &on_cfg, &mut p_on, None);
            let mut p_off = PctPicker::new(seed, 3, spec.cfg.max_steps.min(256));
            let off = run_schedule(&spec.factory, &off_cfg, &mut p_off, None);
            assert_eq!(
                on.schedule, off.schedule,
                "{} seed {seed}: schedule diverged",
                spec.name
            );
            assert_eq!(
                on.digest(),
                off.digest(),
                "{} seed {seed}: observable execution diverged",
                spec.name
            );
            let key = |races: &[(usize, clean_core::RaceReport)]| -> Vec<(usize, String, usize)> {
                races
                    .iter()
                    .map(|(i, r)| (*i, r.kind.to_string(), r.addr))
                    .collect()
            };
            assert_eq!(
                key(&on.clean_races),
                key(&off.clean_races),
                "{} seed {seed}: race verdicts diverged",
                spec.name
            );
        }
    }
}

#[test]
fn offline_engines_see_the_recorded_trace_identically() {
    // The VM's trace encoding (pseudo-locks for barriers and rwlocks,
    // fork/join edges) must reconstruct the same happens-before relation
    // the online detector used: on every corpus program and schedule
    // direction, online CLEAN and the offline CLEAN engine agree on the
    // full first-race verdict, which `check` enforces.
    for name in [
        "racy_probe",
        "waw_pair",
        "war_probe",
        "lock_counter",
        "barrier_phase",
        "rw_shared",
        "cv_handoff",
    ] {
        let spec = find(name).unwrap();
        let exec = run_schedule(&spec.factory, &spec.cfg, &mut DefaultPicker, None);
        let diff = check(&exec, spec.cfg.max_threads);
        assert!(diff.ok(), "{name}: {:#?}", diff.violations);
    }
}
