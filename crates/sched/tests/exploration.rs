//! Integration tests of the exploration drivers: exhaustive DFS with
//! resumable frontier, PCT seed determinism, schedule replay, shrinking,
//! and deadlock detection — the acceptance criteria of the clean-sched
//! subsystem.

use clean_sched::explore::{explore_dfs, explore_pct, DfsExplorer, ExploreOpts};
use clean_sched::picker::{DefaultPicker, PctPicker, ReplayPicker};
use clean_sched::programs::find;
use clean_sched::shrink::{shrink, Repro};
use clean_sched::vm::run_schedule;
use clean_sync::SchedHook;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

#[test]
fn dfs_flags_clean_race_on_every_racy_probe_schedule() {
    let spec = find("racy_probe").unwrap();
    let mut frontier = DfsExplorer::new();
    let report = explore_dfs(&spec, &mut frontier, &ExploreOpts::default());
    assert!(report.complete, "racy_probe space must be exhaustible");
    assert!(report.ok(), "{:#?}", report.failures);
    assert!(report.schedules > 10, "only {} schedules", report.schedules);
    assert_eq!(
        report.clean_race_schedules, report.schedules,
        "CLEAN must flag the seeded WAW/RAW on every schedule"
    );
    assert_eq!(report.deadlocks, 0);
}

#[test]
fn dfs_resume_covers_the_same_space_as_single_shot() {
    let spec = find("racy_probe").unwrap();

    let mut single = DfsExplorer::new();
    let full = explore_dfs(&spec, &mut single, &ExploreOpts::default());
    assert!(full.complete);

    // Resume across "invocations": every chunk serializes the frontier
    // and restores it from the persisted string, as the CLI does.
    let mut chunks = 0;
    let mut total = 0;
    let mut races = 0;
    let mut state = DfsExplorer::new().state();
    loop {
        let mut frontier = DfsExplorer::from_state(&state).unwrap();
        if frontier.exhausted() {
            break;
        }
        let opts = ExploreOpts {
            max_schedules: 7,
            time_budget: None,
        };
        let report = explore_dfs(&spec, &mut frontier, &opts);
        assert!(report.ok(), "{:#?}", report.failures);
        total += report.schedules;
        races += report.clean_race_schedules;
        state = frontier.state();
        chunks += 1;
        assert!(chunks < 10_000, "resume loop not terminating");
    }
    assert!(chunks > 1, "chunk size must actually split the run");
    assert_eq!(total, full.schedules);
    assert_eq!(races, full.clean_race_schedules);
}

#[test]
fn pct_same_seed_reproduces_same_execution() {
    let spec = find("racy_probe").unwrap();
    let run = |seed| {
        let mut p = PctPicker::new(seed, 3, 64);
        run_schedule(&spec.factory, &spec.cfg, &mut p, None)
    };
    let (a, b) = (run(42), run(42));
    assert_eq!(a.schedule, b.schedule);
    assert_eq!(a.digest(), b.digest());

    // Across seeds the sampler must actually vary the interleaving.
    let schedules: std::collections::HashSet<String> =
        (0..32).map(|s| run(s).schedule.to_string()).collect();
    assert!(schedules.len() > 1, "all 32 seeds gave one schedule");
}

#[test]
fn pct_sweep_meets_expectations() {
    let spec = find("racy_probe").unwrap();
    let report = explore_pct(&spec, 0, 200, 3, &ExploreOpts::default());
    assert_eq!(report.schedules, 200);
    assert!(report.ok(), "{:#?}", report.failures);
    assert_eq!(report.clean_race_schedules, 200);
}

#[test]
fn replay_is_deterministic() {
    let spec = find("racy_probe").unwrap();
    let exec = run_schedule(&spec.factory, &spec.cfg, &mut DefaultPicker, None);
    let replay = |token: Vec<usize>| {
        let mut p = ReplayPicker::strict(token);
        let mut e = run_schedule(&spec.factory, &spec.cfg, &mut p, None);
        e.divergence = p.divergence;
        e
    };
    let (a, b) = (
        replay(exec.schedule.0.clone()),
        replay(exec.schedule.0.clone()),
    );
    assert_eq!(
        a.divergence, None,
        "full token must replay without divergence"
    );
    assert_eq!(b.divergence, None);
    assert_eq!(a.schedule, exec.schedule);
    assert_eq!(a.digest(), exec.digest());
    assert_eq!(b.digest(), exec.digest());
    assert_eq!(
        a.clean_races.first().map(|(i, r)| (*i, r.kind, r.addr)),
        exec.clean_races.first().map(|(i, r)| (*i, r.kind, r.addr)),
    );
}

#[test]
fn shrunk_racy_probe_schedule_is_small_and_replays_deterministically() {
    let spec = find("racy_probe").unwrap();
    let exec = run_schedule(&spec.factory, &spec.cfg, &mut DefaultPicker, None);
    let (_, first) = exec.clean_races.first().expect("racy_probe races");
    let repro = Repro::CleanRace {
        kind: first.kind,
        addr: first.addr,
    };
    let shrunk = shrink(&spec, &exec.schedule, repro).expect("schedule reproduces");
    assert!(
        shrunk.schedule.len() <= 10,
        "shrunk token too long: {} ({} yield points)",
        shrunk.schedule,
        shrunk.schedule.len()
    );
    // The shrunk token reproduces the same race, deterministically.
    let rerun = |token: Vec<usize>| {
        let mut p = ReplayPicker::lenient(token);
        run_schedule(&spec.factory, &spec.cfg, &mut p, None)
    };
    let (a, b) = (
        rerun(shrunk.schedule.0.clone()),
        rerun(shrunk.schedule.0.clone()),
    );
    assert_eq!(a.digest(), b.digest());
    for e in [&a, &b] {
        let (_, r) = e.clean_races.first().expect("shrunk schedule still races");
        assert_eq!((r.kind, r.addr), (first.kind, first.addr));
    }
}

#[test]
fn ab_deadlock_is_detected_not_hung() {
    let spec = find("ab_deadlock").unwrap();
    let mut frontier = DfsExplorer::new();
    let report = explore_dfs(&spec, &mut frontier, &ExploreOpts::default());
    assert!(report.complete);
    assert!(report.ok(), "{:#?}", report.failures);
    assert!(report.deadlocks > 0, "some interleavings must deadlock");
    assert!(
        report.deadlocks < report.schedules,
        "some interleavings must complete"
    );
    assert_eq!(
        report.clean_race_schedules, 0,
        "lock-ordered accesses never race"
    );
}

#[test]
fn race_free_corpus_is_race_free_on_every_schedule() {
    for name in ["lock_counter", "barrier_phase", "cv_handoff"] {
        let spec = find(name).unwrap();
        let mut frontier = DfsExplorer::new();
        let report = explore_dfs(&spec, &mut frontier, &ExploreOpts::default());
        assert!(report.complete, "{name}: space must be exhaustible");
        assert!(report.ok(), "{name}: {:#?}", report.failures);
        assert_eq!(report.clean_race_schedules, 0, "{name} raced");
        assert_eq!(report.deadlocks, 0, "{name} deadlocked");
        assert!(report.schedules > 1, "{name}: trivial schedule space");
    }
    // rw_shared's 4-thread space is ~84k schedules (exhausted by the CI
    // sched-explore job in release mode); here a bounded slice suffices.
    let spec = find("rw_shared").unwrap();
    let mut frontier = DfsExplorer::new();
    let opts = ExploreOpts {
        max_schedules: 2_000,
        time_budget: None,
    };
    let report = explore_dfs(&spec, &mut frontier, &opts);
    assert!(report.ok(), "rw_shared: {:#?}", report.failures);
    assert_eq!(report.schedules, 2_000);
    assert_eq!(report.clean_race_schedules, 0, "rw_shared raced");
}

#[test]
fn rw_downgrade_edge_orders_init_before_readers() {
    // The only happens-before source between the write-locked init and
    // the readers' loads is the downgrade's release edge: exhaustive
    // exploration finding zero races on any schedule is exactly the
    // statement that the edge exists and is placed correctly.
    let spec = find("rw_downgrade").unwrap();
    let mut frontier = DfsExplorer::new();
    let report = explore_dfs(&spec, &mut frontier, &ExploreOpts::default());
    assert!(report.complete, "rw_downgrade space must be exhaustible");
    assert!(report.ok(), "{:#?}", report.failures);
    assert_eq!(report.clean_race_schedules, 0, "downgrade edge missing");
    assert_eq!(report.war_miss_schedules, 0);
    assert_eq!(report.deadlocks, 0);
    assert!(report.schedules > 1, "trivial schedule space");
}

#[test]
fn rw_downgrade_leaves_only_a_shared_hold() {
    // After the downgrade the writer holds the lock *shared*: its write
    // to cell 1 races with the concurrent reader in every schedule —
    // WAR direction (CLEAN-missed) when the reader goes first, RAW
    // (CLEAN-flagged) when the writer does.
    let spec = find("rw_downgrade_racy").unwrap();
    let mut frontier = DfsExplorer::new();
    let report = explore_dfs(&spec, &mut frontier, &ExploreOpts::default());
    assert!(report.complete);
    assert!(report.ok(), "{:#?}", report.failures);
    assert!(report.war_miss_schedules > 0, "no WAR-direction schedule");
    assert!(report.clean_race_schedules > 0, "no RAW-direction schedule");
    assert_eq!(
        report.war_miss_schedules + report.clean_race_schedules,
        report.schedules,
        "every schedule must race exactly one way"
    );
    assert_eq!(report.deadlocks, 0);
}

#[test]
fn try_ops_follow_lock_semantics_without_blocking() {
    use clean_sched::vm::{ProgramFn, VmConfig};

    // Single-threaded, so every outcome is schedule-independent: a try
    // op must succeed exactly when the blocking form would be enabled.
    let program: ProgramFn = Arc::new(|| {
        Box::new(|c| {
            let m = c.create_mutex();
            assert!(c.try_lock(m)?, "free mutex must be acquired");
            assert!(!c.try_lock(m)?, "held mutex must fail, not block");
            c.unlock(m)?;
            assert!(c.try_lock(m)?, "released mutex is free again");
            c.unlock(m)?;

            let l = c.create_rwlock();
            assert!(c.try_write(l)?, "free rwlock grants exclusive");
            assert!(!c.try_read(l)?, "writer-held rwlock refuses readers");
            c.downgrade(l)?;
            assert!(!c.try_write(l)?, "shared hold refuses writers");
            assert!(c.try_read(l)?, "shared rwlock admits more readers");
            c.read_unlock(l)?;
            c.read_unlock(l)?;
            assert!(c.try_write(l)?, "fully released rwlock is free");
            c.write_unlock(l)?;
            Ok(1)
        })
    });
    let cfg = VmConfig {
        max_threads: 2,
        ..VmConfig::default()
    };
    let exec = run_schedule(&program, &cfg, &mut DefaultPicker, None);
    assert_eq!(exec.results, vec![Some(1)], "assertions inside the body");
    assert!(exec.clean_races.is_empty());
    assert!(!exec.deadlock);
}

#[test]
fn sched_hook_observes_vm_kendo_activity() {
    #[derive(Default)]
    struct Counter {
        registers: AtomicUsize,
        publishes: AtomicUsize,
    }
    impl SchedHook for Counter {
        fn on_register(&self, _tid: clean_core::ThreadId, _initial: u64) {
            self.registers.fetch_add(1, Ordering::Relaxed);
        }
        fn on_publish(&self, _tid: clean_core::ThreadId, _counter: u64) {
            self.publishes.fetch_add(1, Ordering::Relaxed);
        }
    }
    let spec = find("waw_pair").unwrap();
    let hook = Arc::new(Counter::default());
    let exec = run_schedule(
        &spec.factory,
        &spec.cfg,
        &mut DefaultPicker,
        Some(hook.clone() as Arc<dyn SchedHook>),
    );
    assert!(!exec.clean_races.is_empty());
    assert_eq!(
        hook.registers.load(Ordering::Relaxed),
        3,
        "root + two workers register on the VM's Kendo table"
    );
    assert!(hook.publishes.load(Ordering::Relaxed) >= exec.steps);
}
