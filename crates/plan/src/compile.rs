//! The detector-facing compiled form of a [`CheckPlan`]: an immutable,
//! sorted range table answered by binary search on the check fast path.

use crate::{CheckPlan, PlanAction, PlanEntry};

/// What the detector should do with one concrete access, as answered by
/// [`CompiledPlan::lookup`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanDecision {
    /// Skip the check entirely — but only if the accessing thread is
    /// `owner`; the caller must enforce the guard. Foreign threads take
    /// the full check path.
    Elide {
        /// The witness owner thread (raw thread id).
        owner: u32,
    },
    /// Insert/probe a growable range entry in the SFR write filter.
    Coalesce,
    /// Use the chunked (vectorized) epoch-compare loop.
    Batch,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct CompiledEntry {
    lo: usize,
    hi: usize,
    decision: PlanDecision,
}

/// A validated [`CheckPlan`] compiled for fast lookup: entries sorted
/// by range start, answered with one binary search per check.
///
/// Construct with [`CheckPlan::compile`]; an unsound plan never
/// compiles.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledPlan {
    entries: Vec<CompiledEntry>,
    lo_bound: usize,
    hi_bound: usize,
}

impl CompiledPlan {
    /// Internal: build from an already-validated plan (sorted here).
    pub(crate) fn from_validated(plan: &CheckPlan) -> Self {
        let mut entries: Vec<CompiledEntry> = plan
            .entries
            .iter()
            .map(|e: &PlanEntry| CompiledEntry {
                lo: e.lo,
                hi: e.hi,
                decision: match e.action {
                    PlanAction::Elide => PlanDecision::Elide {
                        owner: e.witness.expect("validated elide has a witness").owner,
                    },
                    PlanAction::Coalesce => PlanDecision::Coalesce,
                    PlanAction::Batch => PlanDecision::Batch,
                },
            })
            .collect();
        entries.sort_by_key(|e| e.lo);
        let lo_bound = entries.first().map_or(usize::MAX, |e| e.lo);
        let hi_bound = entries.last().map_or(0, |e| e.hi);
        CompiledPlan {
            entries,
            lo_bound,
            hi_bound,
        }
    }

    /// The decision for an access of `size` bytes at `addr`, if some
    /// plan range *fully contains* `[addr, addr + size)`. Straddling
    /// accesses get no decision and take the unplanned path — a plan
    /// can only be consulted for accesses it wholly describes.
    #[inline]
    pub fn lookup(&self, addr: usize, size: usize) -> Option<PlanDecision> {
        // One branch rejects everything outside the planned footprint —
        // the common case for a plan covering a few hot regions.
        if addr < self.lo_bound || addr >= self.hi_bound {
            return None;
        }
        // Last entry with lo <= addr.
        let idx = self.entries.partition_point(|e| e.lo <= addr);
        let e = &self.entries[idx.checked_sub(1)?];
        (addr >= e.lo && addr.checked_add(size)? <= e.hi).then_some(e.decision)
    }

    /// Number of compiled ranges.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the plan compiled to no ranges (every lookup misses).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Witness;

    fn plan() -> CompiledPlan {
        CheckPlan {
            profile: None,
            entries: vec![
                PlanEntry {
                    lo: 0x1000,
                    hi: 0x2000,
                    action: PlanAction::Elide,
                    witness: Some(Witness {
                        owner: 3,
                        observed: 100,
                        foreign: 0,
                    }),
                },
                PlanEntry {
                    lo: 0x4000,
                    hi: 0x5000,
                    action: PlanAction::Coalesce,
                    witness: None,
                },
                PlanEntry {
                    lo: 0x2000,
                    hi: 0x3000,
                    action: PlanAction::Batch,
                    witness: None,
                },
            ],
        }
        .compile()
        .unwrap()
    }

    #[test]
    fn lookup_finds_the_covering_range() {
        let p = plan();
        assert_eq!(p.lookup(0x1000, 8), Some(PlanDecision::Elide { owner: 3 }));
        assert_eq!(p.lookup(0x1ff8, 8), Some(PlanDecision::Elide { owner: 3 }));
        assert_eq!(p.lookup(0x2000, 4), Some(PlanDecision::Batch));
        assert_eq!(p.lookup(0x4800, 64), Some(PlanDecision::Coalesce));
    }

    #[test]
    fn lookup_misses_outside_and_on_straddles() {
        let p = plan();
        assert_eq!(p.lookup(0x0, 8), None, "below all ranges");
        assert_eq!(p.lookup(0x5000, 1), None, "at exclusive end");
        assert_eq!(p.lookup(0x3000, 8), None, "in the gap");
        assert_eq!(p.lookup(0x1ffc, 8), None, "straddle into adjacent range");
        assert_eq!(p.lookup(0x4ffc, 8), None, "straddle out of the plan");
        assert_eq!(p.lookup(usize::MAX, 8), None, "overflow-safe");
    }

    #[test]
    fn empty_plan_always_misses() {
        let p = CheckPlan::empty().compile().unwrap();
        assert!(p.is_empty());
        assert_eq!(p.lookup(0, 8), None);
        assert_eq!(p.lookup(0x1000, 1), None);
    }

    #[test]
    fn adjacent_ranges_do_not_bleed() {
        // 0x1fff+1-byte access sits wholly in the elide range; the same
        // address with 2 bytes straddles into batch and must miss.
        let p = plan();
        assert_eq!(p.lookup(0x1fff, 1), Some(PlanDecision::Elide { owner: 3 }));
        assert_eq!(p.lookup(0x1fff, 2), None);
    }
}
