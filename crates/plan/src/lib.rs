//! # clean-plan
//!
//! Ahead-of-time check-elision planning for the CLEAN race detector —
//! the library-level analogue of "Compiling Away the Overhead of Race
//! Detection": a static pass over a kernel's *access pattern* (observed
//! from a recorded trace, or described by workload metadata) emits a
//! versioned [`CheckPlan`] that tells the detector, per address range,
//! how to treat checks:
//!
//! * **elide** — the range is provably thread-private for one owner
//!   thread; the owner's accesses skip instrumentation entirely. Every
//!   elide entry carries a soundness [`Witness`] (owner, observed
//!   access count, foreign access count) and [`CheckPlan::validate`]
//!   rejects any plan whose witness admits a single foreign access —
//!   an unsound elision is a load-time [`PlanError::UnsoundElide`],
//!   never a silently skipped check.
//! * **coalesce** — the range is swept by strided writers that the
//!   detector's direct-mapped `addr >> 3` SFR filter slots keep
//!   evicting; the detector gives these ranges growable *range* filter
//!   entries that extend with the stride and answer whole re-sweeps.
//! * **batch** — contiguous checked spans routed through the
//!   vectorized epoch-compare loop over chunked shadow loads (the
//!   paper's Fig. 8 experiment, made real).
//!
//! The plan is serialized as a line-oriented `CPLN v1` text file:
//!
//! ```text
//! CPLN v1
//! # comments run to end of line; addresses are hex, ranges half-open
//! elide 1000..2000 owner=2 observed=4096 foreign=0
//! coalesce 8000..c000
//! batch 10000..14000
//! ```
//!
//! [`CompiledPlan`] is the immutable, binary-searchable form the
//! detector consults on its check fast path; [`PlanObserver`] derives a
//! plan (plus [`Coverage`] statistics) from a stream of observed
//! accesses — e.g. a recorded CLTR trace replayed through
//! `clean-analyze plan`.
//!
//! Elision soundness: a witness with `foreign == 0` proves the range
//! was private *in the observed execution*. Under CLEAN's deterministic
//! execution model the same program/input replays the same access
//! interleaving, so observed-private is private in every replay; the
//! compiled plan still guards dynamically (only the witness owner
//! elides — any other thread falls through to the full check) so a
//! plan applied to the wrong workload degrades to extra checks, not to
//! missed ones on foreign threads.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod compile;
mod derive;

pub use compile::{CompiledPlan, PlanDecision};
pub use derive::{Coverage, PlanObserver, DEFAULT_GRANULE};

use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// First line of every plan file.
pub const PLAN_HEADER: &str = "CPLN v1";

/// Default plan file extension.
pub const PLAN_EXT: &str = "cpln";

/// Relative mismatch above which a stamped plan counts as stale against
/// a freshly derived footprint (see [`CheckPlan::audit_freshness`]).
pub const STALE_THRESHOLD: f64 = 0.5;

/// The derivation footprint stamped into a plan file: how big the
/// observed execution was when the plan was derived. A plan applied to
/// an execution whose footprint diverges wildly from the stamp is
/// *suspect* — still sound (elision is dynamically guarded per owner
/// thread), but likely planning for the wrong workload, so its elide and
/// coalesce ranges degrade to dead weight. [`CheckPlan::audit_freshness`]
/// turns that divergence into a loud warning and a `plan_stale` metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanProfile {
    /// Derivation granule in bytes.
    pub granule: usize,
    /// Distinct granules touched by the observed execution.
    pub granules: u64,
    /// Observed access events folded into the derivation.
    pub events: u64,
    /// Distinct threads observed accessing data.
    pub threads: u32,
}

impl PlanProfile {
    /// Canonical single-line rendering (no newline), as stored in the
    /// `CPLN v1` text after the header:
    /// `profile granule=64 granules=128 events=4096 threads=2`.
    pub fn render(&self) -> String {
        format!(
            "profile granule={} granules={} events={} threads={}",
            self.granule, self.granules, self.events, self.threads
        )
    }

    /// Worst relative mismatch between this stamp and `current` across
    /// the footprint quantities, in `[0, 1]`. A granule difference is
    /// reported as a full mismatch (1.0): profiles derived at different
    /// granules are not comparable granule-for-granule.
    pub fn mismatch(&self, current: &PlanProfile) -> f64 {
        if self.granule != current.granule {
            return 1.0;
        }
        fn rel(a: u64, b: u64) -> f64 {
            let hi = a.max(b);
            if hi == 0 {
                return 0.0;
            }
            (hi - a.min(b)) as f64 / hi as f64
        }
        rel(self.granules, current.granules)
            .max(rel(self.events, current.events))
            .max(rel(u64::from(self.threads), u64::from(current.threads)))
    }
}

/// What the detector should do with checks inside a plan range.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanAction {
    /// Skip instrumentation entirely for the witness owner thread.
    Elide,
    /// Use a growable range entry in the SFR write filter so strided
    /// sweeps stop thrashing the direct-mapped slots.
    Coalesce,
    /// Route multi-byte checks through the chunked (vectorized)
    /// epoch-compare loop.
    Batch,
}

impl PlanAction {
    /// Canonical lowercase tag used in the text format.
    pub fn tag(self) -> &'static str {
        match self {
            PlanAction::Elide => "elide",
            PlanAction::Coalesce => "coalesce",
            PlanAction::Batch => "batch",
        }
    }

    fn from_tag(tag: &str) -> Option<Self> {
        match tag {
            "elide" => Some(PlanAction::Elide),
            "coalesce" => Some(PlanAction::Coalesce),
            "batch" => Some(PlanAction::Batch),
            _ => None,
        }
    }
}

/// The soundness evidence behind an [`PlanAction::Elide`] entry.
///
/// Recorded by whatever derived the plan; checked by
/// [`CheckPlan::validate`]. `foreign` must be zero — a range with even
/// one access by a thread other than `owner` is not thread-private and
/// must keep its checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Witness {
    /// The single thread observed accessing the range.
    pub owner: u32,
    /// Total accesses observed inside the range (must be nonzero: an
    /// unobserved range has no evidence at all).
    pub observed: u64,
    /// Accesses by any thread other than `owner` (must be zero).
    pub foreign: u64,
}

/// One planned address range. Ranges are half-open byte ranges
/// `[lo, hi)` in the detector's address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanEntry {
    /// Inclusive low end of the range.
    pub lo: usize,
    /// Exclusive high end of the range.
    pub hi: usize,
    /// What to do with checks in the range.
    pub action: PlanAction,
    /// Elision evidence; required (and validated) for `Elide`, ignored
    /// otherwise.
    pub witness: Option<Witness>,
}

impl PlanEntry {
    /// Canonical single-line rendering (no comment, no newline).
    pub fn render(&self) -> String {
        match (self.action, self.witness) {
            (PlanAction::Elide, Some(w)) => format!(
                "elide {:x}..{:x} owner={} observed={} foreign={}",
                self.lo, self.hi, w.owner, w.observed, w.foreign
            ),
            (action, _) => format!("{} {:x}..{:x}", action.tag(), self.lo, self.hi),
        }
    }
}

/// Why a plan failed to parse, validate or load.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The text did not parse; names the 1-based line.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// A range with `lo >= hi`.
    EmptyRange {
        /// Inclusive low end of the offending range.
        lo: usize,
        /// Exclusive high end of the offending range.
        hi: usize,
    },
    /// Two entries overlap; a byte must have exactly one planned action.
    Overlap {
        /// Rendering of the first entry.
        first: String,
        /// Rendering of the overlapping entry.
        second: String,
    },
    /// An elide entry whose witness does not prove thread-privacy.
    /// This is the load-time gate: an unsound elision is rejected
    /// here, never silently applied.
    UnsoundElide {
        /// Inclusive low end of the rejected range.
        lo: usize,
        /// Exclusive high end of the rejected range.
        hi: usize,
        /// Human-readable reason (missing witness, foreign accesses,
        /// zero observations).
        reason: String,
    },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Parse { line, message } => write!(f, "plan line {line}: {message}"),
            PlanError::EmptyRange { lo, hi } => write!(f, "empty plan range {lo:x}..{hi:x}"),
            PlanError::Overlap { first, second } => {
                write!(f, "overlapping plan entries: {first:?} and {second:?}")
            }
            PlanError::UnsoundElide { lo, hi, reason } => {
                write!(f, "unsound elide {lo:x}..{hi:x}: {reason}")
            }
        }
    }
}

impl std::error::Error for PlanError {}

fn perr(line: usize, message: impl Into<String>) -> PlanError {
    PlanError::Parse {
        line,
        message: message.into(),
    }
}

fn parse_hex(s: &str, line: usize, what: &str) -> Result<usize, PlanError> {
    let s = s.strip_prefix("0x").unwrap_or(s);
    usize::from_str_radix(s, 16).map_err(|_| perr(line, format!("bad {what} address {s:?}")))
}

fn parse_kv(token: &str, key: &str, line: usize) -> Result<u64, PlanError> {
    let v = token
        .strip_prefix(key)
        .and_then(|rest| rest.strip_prefix('='))
        .ok_or_else(|| perr(line, format!("expected {key}=<n>, got {token:?}")))?;
    v.parse()
        .map_err(|_| perr(line, format!("bad {key} value {v:?}")))
}

fn parse_entry(tokens: &[&str], line: usize) -> Result<PlanEntry, PlanError> {
    let [tag, range, rest @ ..] = tokens else {
        return Err(perr(line, "plan entry needs an action and a range"));
    };
    let action = PlanAction::from_tag(tag)
        .ok_or_else(|| perr(line, format!("unknown plan action {tag:?}")))?;
    let (lo, hi) = range
        .split_once("..")
        .ok_or_else(|| perr(line, format!("range must be lo..hi, got {range:?}")))?;
    let lo = parse_hex(lo, line, "low")?;
    let hi = parse_hex(hi, line, "high")?;
    let witness = match (action, rest) {
        (PlanAction::Elide, [owner, observed, foreign]) => Some(Witness {
            owner: parse_kv(owner, "owner", line)? as u32,
            observed: parse_kv(observed, "observed", line)?,
            foreign: parse_kv(foreign, "foreign", line)?,
        }),
        (PlanAction::Elide, _) => {
            return Err(perr(
                line,
                "elide needs owner=<tid> observed=<n> foreign=<n>",
            ))
        }
        (_, []) => None,
        (_, extra) => return Err(perr(line, format!("unexpected tokens {extra:?}"))),
    };
    Ok(PlanEntry {
        lo,
        hi,
        action,
        witness,
    })
}

/// A versioned static check plan: a set of non-overlapping address
/// ranges, each with one [`PlanAction`].
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CheckPlan {
    /// The planned ranges, in file order.
    pub entries: Vec<PlanEntry>,
    /// Derivation footprint stamp, if the deriver recorded one. Absent
    /// on hand-written or pre-stamp plan files; never required.
    pub profile: Option<PlanProfile>,
}

impl CheckPlan {
    /// The empty plan: every check runs unmodified.
    pub fn empty() -> Self {
        CheckPlan::default()
    }

    /// Parses `CPLN v1` text. Whitespace-only input is the empty plan;
    /// anything else must start with the header line. Parsing includes
    /// full validation — an unsound plan never parses.
    ///
    /// # Errors
    ///
    /// [`PlanError`] naming the first offending line or entry.
    pub fn parse(text: &str) -> Result<Self, PlanError> {
        if text.trim().is_empty() {
            return Ok(Self::empty());
        }
        let mut entries = Vec::new();
        let mut profile = None;
        let mut saw_header = false;
        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            if !saw_header {
                if line != PLAN_HEADER {
                    return Err(perr(
                        line_no,
                        format!("expected {PLAN_HEADER:?} header, got {line:?}"),
                    ));
                }
                saw_header = true;
                continue;
            }
            let tokens: Vec<&str> = line.split_ascii_whitespace().collect();
            if tokens.first() == Some(&"profile") {
                if profile.is_some() {
                    return Err(perr(line_no, "duplicate profile directive"));
                }
                let [_, granule, granules, events, threads] = tokens[..] else {
                    return Err(perr(
                        line_no,
                        "profile needs granule=<n> granules=<n> events=<n> threads=<n>",
                    ));
                };
                profile = Some(PlanProfile {
                    granule: parse_kv(granule, "granule", line_no)? as usize,
                    granules: parse_kv(granules, "granules", line_no)?,
                    events: parse_kv(events, "events", line_no)?,
                    threads: parse_kv(threads, "threads", line_no)? as u32,
                });
                continue;
            }
            entries.push(parse_entry(&tokens, line_no)?);
        }
        let plan = CheckPlan { entries, profile };
        plan.validate()?;
        Ok(plan)
    }

    /// Canonical text rendering, header (and profile stamp) included.
    pub fn render(&self) -> String {
        let mut out = format!("{PLAN_HEADER}\n");
        if let Some(p) = &self.profile {
            out.push_str(&p.render());
            out.push('\n');
        }
        for e in &self.entries {
            out.push_str(&e.render());
            out.push('\n');
        }
        out
    }

    /// Compares this plan's derivation stamp against a freshly derived
    /// footprint. Returns a human-readable staleness warning — and bumps
    /// the global `plan_stale` counter — when the worst relative
    /// mismatch exceeds [`STALE_THRESHOLD`]; returns `None` for fresh,
    /// comparable, or unstamped plans. Staleness never makes a plan
    /// unsound (elision is per-owner guarded at check time); it makes it
    /// *useless*, which is worth shouting about rather than silently
    /// running with dead ranges.
    pub fn audit_freshness(&self, current: &PlanProfile) -> Option<String> {
        let stamped = self.profile.as_ref()?;
        let mismatch = stamped.mismatch(current);
        if mismatch <= STALE_THRESHOLD {
            return None;
        }
        clean_obs::global().counter("plan_stale").inc();
        Some(format!(
            "stale check plan: derivation stamp [{}] diverges {:.0}% from the \
             current footprint [{}]; the plan still guards soundly but its \
             ranges likely miss — re-derive it for this workload",
            stamped.render(),
            100.0 * mismatch,
            current.render(),
        ))
    }

    /// Loads a plan file. Unlike suppression policies a *missing* plan
    /// file is an error: a plan is asked for by name, not ambient.
    ///
    /// # Errors
    ///
    /// I/O failures, or `InvalidData` wrapping a [`PlanError`].
    pub fn load(path: impl AsRef<Path>) -> io::Result<Self> {
        let text = fs::read_to_string(path.as_ref())?;
        Self::parse(&text).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Atomically writes the canonical rendering to `path`
    /// (tmp + rename).
    ///
    /// # Errors
    ///
    /// Filesystem failures.
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let tmp = path.with_extension(format!("{PLAN_EXT}.tmp"));
        fs::write(&tmp, self.render().as_bytes())?;
        fs::rename(&tmp, path)
    }

    /// Checks structural soundness: non-empty non-overlapping ranges,
    /// and a privacy-proving witness on every elide entry.
    ///
    /// # Errors
    ///
    /// The first [`PlanError`] found, [`PlanError::UnsoundElide`] for
    /// any elision whose witness admits foreign accesses (or carries no
    /// evidence at all).
    pub fn validate(&self) -> Result<(), PlanError> {
        for e in &self.entries {
            if e.lo >= e.hi {
                return Err(PlanError::EmptyRange { lo: e.lo, hi: e.hi });
            }
            if e.action == PlanAction::Elide {
                let w = e.witness.ok_or_else(|| PlanError::UnsoundElide {
                    lo: e.lo,
                    hi: e.hi,
                    reason: "no witness recorded".into(),
                })?;
                if w.foreign != 0 {
                    return Err(PlanError::UnsoundElide {
                        lo: e.lo,
                        hi: e.hi,
                        reason: format!(
                            "witness admits {} foreign access(es) beside owner t{}",
                            w.foreign, w.owner
                        ),
                    });
                }
                if w.observed == 0 {
                    return Err(PlanError::UnsoundElide {
                        lo: e.lo,
                        hi: e.hi,
                        reason: "witness observed no accesses".into(),
                    });
                }
            }
        }
        let mut sorted: Vec<&PlanEntry> = self.entries.iter().collect();
        sorted.sort_by_key(|e| e.lo);
        for pair in sorted.windows(2) {
            if pair[1].lo < pair[0].hi {
                return Err(PlanError::Overlap {
                    first: pair[0].render(),
                    second: pair[1].render(),
                });
            }
        }
        Ok(())
    }

    /// Validates and compiles into the detector-consumable form.
    ///
    /// # Errors
    ///
    /// Any [`CheckPlan::validate`] failure.
    pub fn compile(&self) -> Result<CompiledPlan, PlanError> {
        self.validate()?;
        Ok(CompiledPlan::from_validated(self))
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the plan has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn elide(lo: usize, hi: usize, owner: u32) -> PlanEntry {
        PlanEntry {
            lo,
            hi,
            action: PlanAction::Elide,
            witness: Some(Witness {
                owner,
                observed: 16,
                foreign: 0,
            }),
        }
    }

    #[test]
    fn empty_and_whitespace_parse_to_empty_plan() {
        for text in ["", "  \n\t\n", "CPLN v1\n", "CPLN v1\n# nothing\n"] {
            let p = CheckPlan::parse(text).unwrap();
            assert!(p.is_empty(), "{text:?}");
        }
    }

    #[test]
    fn header_is_required() {
        let e = CheckPlan::parse("batch 0..10\n").unwrap_err();
        assert!(matches!(e, PlanError::Parse { line: 1, .. }), "{e}");
    }

    #[test]
    fn round_trips_through_text() {
        let plan = CheckPlan {
            profile: None,
            entries: vec![
                elide(0x1000, 0x2000, 2),
                PlanEntry {
                    lo: 0x8000,
                    hi: 0xc000,
                    action: PlanAction::Coalesce,
                    witness: None,
                },
                PlanEntry {
                    lo: 0x10000,
                    hi: 0x14000,
                    action: PlanAction::Batch,
                    witness: None,
                },
            ],
        };
        let text = plan.render();
        assert_eq!(CheckPlan::parse(&text).unwrap(), plan);
    }

    #[test]
    fn profile_stamp_round_trips() {
        let plan = CheckPlan {
            profile: Some(PlanProfile {
                granule: 64,
                granules: 128,
                events: 4096,
                threads: 2,
            }),
            entries: vec![elide(0x1000, 0x2000, 2)],
        };
        let text = plan.render();
        assert!(text.contains("profile granule=64 granules=128 events=4096 threads=2"));
        assert_eq!(CheckPlan::parse(&text).unwrap(), plan);
        // Pre-stamp files (no profile line) still parse, to None.
        assert_eq!(
            CheckPlan::parse("CPLN v1\nbatch 0..10\n").unwrap().profile,
            None
        );
        // A second stamp is an error, not a silent overwrite.
        let twice = format!(
            "CPLN v1\n{}\n{}\n",
            plan.profile.unwrap().render(),
            plan.profile.unwrap().render()
        );
        assert!(CheckPlan::parse(&twice).is_err());
    }

    #[test]
    fn audit_freshness_flags_divergent_footprints() {
        let stamped = PlanProfile {
            granule: 64,
            granules: 100,
            events: 10_000,
            threads: 4,
        };
        let plan = CheckPlan {
            profile: Some(stamped),
            entries: vec![elide(0, 0x1000, 0)],
        };
        // Identical and mildly drifted footprints are fresh.
        assert_eq!(plan.audit_freshness(&stamped), None);
        let drifted = PlanProfile {
            events: 14_000,
            ..stamped
        };
        assert_eq!(plan.audit_freshness(&drifted), None);
        // A footprint 10x the stamp is loudly stale.
        let grown = PlanProfile {
            granules: 1_000,
            events: 100_000,
            ..stamped
        };
        let warning = plan.audit_freshness(&grown).unwrap();
        assert!(warning.contains("stale check plan"), "{warning}");
        assert!(
            clean_obs::global()
                .snapshot()
                .counter("plan_stale", &[])
                .unwrap()
                >= 1
        );
        // A different derivation granule is always stale…
        let regranuled = PlanProfile {
            granule: 8,
            ..stamped
        };
        assert!(plan.audit_freshness(&regranuled).is_some());
        // …and an unstamped plan has nothing to audit.
        assert_eq!(CheckPlan::empty().audit_freshness(&stamped), None);
    }

    #[test]
    fn parse_errors_name_their_line() {
        for (text, line) in [
            ("CPLN v1\nbogus 0..10\n", 2),
            ("CPLN v1\n\nbatch 10\n", 3),
            ("CPLN v1\nbatch zz..10\n", 2),
            ("CPLN v1\nelide 0..10\n", 2),
            ("CPLN v1\nbatch 0..10 extra\n", 2),
        ] {
            let e = CheckPlan::parse(text).unwrap_err();
            match e {
                PlanError::Parse { line: l, .. } => assert_eq!(l, line, "{text:?}"),
                other => panic!("{text:?} → {other:?}"),
            }
        }
    }

    #[test]
    fn unsound_elides_are_rejected_at_parse() {
        let e =
            CheckPlan::parse("CPLN v1\nelide 0..100 owner=1 observed=8 foreign=3\n").unwrap_err();
        assert!(matches!(e, PlanError::UnsoundElide { .. }), "{e}");
        let e =
            CheckPlan::parse("CPLN v1\nelide 0..100 owner=1 observed=0 foreign=0\n").unwrap_err();
        assert!(matches!(e, PlanError::UnsoundElide { .. }), "{e}");
    }

    #[test]
    fn overlaps_and_empty_ranges_are_rejected() {
        let plan = CheckPlan {
            profile: None,
            entries: vec![PlanEntry {
                lo: 0x100,
                hi: 0x100,
                action: PlanAction::Batch,
                witness: None,
            }],
        };
        assert!(matches!(plan.validate(), Err(PlanError::EmptyRange { .. })));
        let plan = CheckPlan {
            profile: None,
            entries: vec![
                PlanEntry {
                    lo: 0x100,
                    hi: 0x300,
                    action: PlanAction::Batch,
                    witness: None,
                },
                PlanEntry {
                    lo: 0x2ff,
                    hi: 0x400,
                    action: PlanAction::Coalesce,
                    witness: None,
                },
            ],
        };
        assert!(matches!(plan.validate(), Err(PlanError::Overlap { .. })));
    }

    #[test]
    fn save_and_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("clean-cpln-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let path = dir.join("kernel.cpln");
        let plan = CheckPlan {
            profile: None,
            entries: vec![elide(0x40, 0x80, 0)],
        };
        plan.save(&path).unwrap();
        assert_eq!(CheckPlan::load(&path).unwrap(), plan);
        fs::write(&path, "not a plan\n").unwrap();
        assert!(CheckPlan::load(&path).is_err());
        let _ = fs::remove_dir_all(&dir);
    }
}
