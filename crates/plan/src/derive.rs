//! Plan derivation from an observed access stream.
//!
//! [`PlanObserver`] folds `(tid, addr, size, is_write)` observations —
//! typically replayed from a recorded CLTR trace — into per-granule
//! ownership and stride statistics, then classifies contiguous runs of
//! granules into the three plan actions:
//!
//! * every granule touched by exactly one thread → **elide**, with the
//!   witness (owner, observed count, foreign = 0) recorded per entry;
//! * shared granules whose writes are mostly *sequential* (each write
//!   starts where the thread's previous write ended) → **coalesce**,
//!   the strided-sweep shape the direct-mapped filter slots miss;
//! * every other shared granule → **batch**, routed through the
//!   chunked epoch-compare loop.

use crate::{CheckPlan, PlanAction, PlanEntry, PlanProfile, Witness};
use std::collections::{BTreeMap, HashMap, HashSet};

/// Default derivation granule in bytes. Ownership and stride are
/// tracked per granule; plan ranges are unions of whole granules.
pub const DEFAULT_GRANULE: usize = 64;

/// Writes must be at least this sequential (3/4) for a shared granule
/// to classify as strided.
const SEQ_NUM: u64 = 3;
const SEQ_DEN: u64 = 4;

#[derive(Debug, Default, Clone, Copy)]
struct Granule {
    owner: Option<u32>,
    accesses: u64,
    foreign: u64,
    writes: u64,
    seq_writes: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    Private(u32),
    Strided,
    Shared,
}

/// Coverage statistics for a derived plan: how much of the observed
/// footprint each action class captured.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Coverage {
    /// Bytes covered by elide entries.
    pub elide_bytes: u64,
    /// Bytes covered by coalesce entries.
    pub coalesce_bytes: u64,
    /// Bytes covered by batch entries.
    pub batch_bytes: u64,
    /// Elide entry count.
    pub elide_entries: usize,
    /// Coalesce entry count.
    pub coalesce_entries: usize,
    /// Batch entry count.
    pub batch_entries: usize,
    /// Total observed accesses.
    pub observed_accesses: u64,
    /// Accesses that fell in elide ranges (checks a consumer skips
    /// entirely for the owner thread).
    pub elided_accesses: u64,
}

impl Coverage {
    /// Total bytes covered by any plan entry.
    pub fn total_bytes(&self) -> u64 {
        self.elide_bytes + self.coalesce_bytes + self.batch_bytes
    }

    /// Fraction of covered bytes in `class_bytes` (0 when nothing is
    /// covered).
    fn fraction(&self, class_bytes: u64) -> f64 {
        let total = self.total_bytes();
        if total == 0 {
            return 0.0;
        }
        class_bytes as f64 / total as f64
    }

    /// Human-readable multi-line summary (used by `clean-analyze plan`).
    pub fn render(&self) -> String {
        let pct = |b| 100.0 * self.fraction(b);
        let access_pct = if self.observed_accesses == 0 {
            0.0
        } else {
            100.0 * self.elided_accesses as f64 / self.observed_accesses as f64
        };
        format!(
            "elide    {:>6} entries  {:>12} bytes ({:5.1}%)\n\
             coalesce {:>6} entries  {:>12} bytes ({:5.1}%)\n\
             batch    {:>6} entries  {:>12} bytes ({:5.1}%)\n\
             observed {} accesses, {:.1}% in elide ranges",
            self.elide_entries,
            self.elide_bytes,
            pct(self.elide_bytes),
            self.coalesce_entries,
            self.coalesce_bytes,
            pct(self.coalesce_bytes),
            self.batch_entries,
            self.batch_bytes,
            pct(self.batch_bytes),
            self.observed_accesses,
            access_pct,
        )
    }
}

/// Accumulates observed accesses and derives a [`CheckPlan`].
#[derive(Debug)]
pub struct PlanObserver {
    granule: usize,
    granules: BTreeMap<usize, Granule>,
    last_write_end: HashMap<u32, usize>,
    tids: HashSet<u32>,
    observed: u64,
}

impl PlanObserver {
    /// A fresh observer with the [`DEFAULT_GRANULE`].
    pub fn new() -> Self {
        Self::with_granule(DEFAULT_GRANULE)
    }

    /// A fresh observer with a custom power-of-two granule (clamped to
    /// at least 8 bytes).
    pub fn with_granule(granule: usize) -> Self {
        let granule = granule.max(8).next_power_of_two();
        PlanObserver {
            granule,
            granules: BTreeMap::new(),
            last_write_end: HashMap::new(),
            tids: HashSet::new(),
            observed: 0,
        }
    }

    /// The granule in use.
    pub fn granule(&self) -> usize {
        self.granule
    }

    /// Folds one observed access into the statistics.
    pub fn observe(&mut self, tid: u32, addr: usize, size: usize, is_write: bool) {
        if size == 0 {
            return;
        }
        self.observed += 1;
        self.tids.insert(tid);
        let sequential = is_write && self.last_write_end.get(&tid) == Some(&addr);
        if is_write {
            self.last_write_end.insert(tid, addr.saturating_add(size));
        }
        let first = addr / self.granule;
        let last = (addr + size - 1) / self.granule;
        for g in first..=last {
            let granule = self.granules.entry(g).or_default();
            granule.accesses += 1;
            match granule.owner {
                None => granule.owner = Some(tid),
                Some(owner) if owner != tid => granule.foreign += 1,
                Some(_) => {}
            }
            if is_write {
                granule.writes += 1;
                if sequential {
                    granule.seq_writes += 1;
                }
            }
        }
    }

    /// Observed access count so far.
    pub fn observed(&self) -> u64 {
        self.observed
    }

    /// The derivation footprint accumulated so far — what
    /// [`derive`](Self::derive) stamps into the plan.
    pub fn profile(&self) -> PlanProfile {
        PlanProfile {
            granule: self.granule,
            granules: self.granules.len() as u64,
            events: self.observed,
            threads: self.tids.len() as u32,
        }
    }

    fn classify(g: &Granule) -> Class {
        match g.owner {
            Some(owner) if g.foreign == 0 => Class::Private(owner),
            _ => {
                if g.writes > 0 && g.seq_writes * SEQ_DEN >= g.writes * SEQ_NUM {
                    Class::Strided
                } else {
                    Class::Shared
                }
            }
        }
    }

    /// Derives the plan and its coverage statistics. The plan always
    /// validates — elide witnesses are only emitted for foreign-free
    /// runs — so `derive().0.compile()` cannot fail.
    pub fn derive(&self) -> (CheckPlan, Coverage) {
        let mut entries: Vec<PlanEntry> = Vec::new();
        let mut coverage = Coverage {
            observed_accesses: self.observed,
            ..Coverage::default()
        };
        // Walk granules in address order, merging adjacent granules of
        // the same class (and owner, for private runs) into one entry.
        let mut run: Option<(usize, usize, Class, u64)> = None; // (first, last, class, accesses)
        let flush = |run: &mut Option<(usize, usize, Class, u64)>, entries: &mut Vec<PlanEntry>| {
            let Some((first, last, class, accesses)) = run.take() else {
                return;
            };
            let lo = first * self.granule;
            let hi = (last + 1) * self.granule;
            let (action, witness) = match class {
                Class::Private(owner) => (
                    PlanAction::Elide,
                    Some(Witness {
                        owner,
                        observed: accesses,
                        foreign: 0,
                    }),
                ),
                Class::Strided => (PlanAction::Coalesce, None),
                Class::Shared => (PlanAction::Batch, None),
            };
            entries.push(PlanEntry {
                lo,
                hi,
                action,
                witness,
            });
        };
        for (&g, granule) in &self.granules {
            let class = Self::classify(granule);
            match &mut run {
                Some((_, last, c, accesses)) if *c == class && g == *last + 1 => {
                    *last = g;
                    *accesses += granule.accesses;
                }
                _ => {
                    flush(&mut run, &mut entries);
                    run = Some((g, g, class, granule.accesses));
                }
            }
        }
        flush(&mut run, &mut entries);
        for e in &entries {
            let bytes = (e.hi - e.lo) as u64;
            match e.action {
                PlanAction::Elide => {
                    coverage.elide_bytes += bytes;
                    coverage.elide_entries += 1;
                    coverage.elided_accesses += e.witness.map_or(0, |w| w.observed);
                }
                PlanAction::Coalesce => {
                    coverage.coalesce_bytes += bytes;
                    coverage.coalesce_entries += 1;
                }
                PlanAction::Batch => {
                    coverage.batch_bytes += bytes;
                    coverage.batch_entries += 1;
                }
            }
        }
        (
            CheckPlan {
                entries,
                profile: Some(self.profile()),
            },
            coverage,
        )
    }
}

impl Default for PlanObserver {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PlanDecision;

    #[test]
    fn private_ranges_become_sound_elides() {
        let mut obs = PlanObserver::new();
        // t0 owns [0, 1024); t1 owns [4096, 8192).
        for i in 0..128 {
            obs.observe(0, i * 8, 8, true);
            obs.observe(1, 4096 + i * 32, 8, i % 2 == 0);
        }
        let (plan, cov) = obs.derive();
        plan.validate().unwrap();
        assert_eq!(cov.elide_entries, 2);
        assert_eq!(cov.coalesce_entries + cov.batch_entries, 0);
        let compiled = plan.compile().unwrap();
        assert_eq!(
            compiled.lookup(0, 8),
            Some(PlanDecision::Elide { owner: 0 })
        );
        assert_eq!(
            compiled.lookup(4096, 8),
            Some(PlanDecision::Elide { owner: 1 })
        );
        assert_eq!(cov.elided_accesses, cov.observed_accesses);
    }

    #[test]
    fn shared_strided_writes_become_coalesce() {
        let mut obs = PlanObserver::new();
        // Both threads sweep the same region sequentially (two passes
        // each) — shared, but stride-dominated.
        for _pass in 0..2 {
            for tid in 0..2u32 {
                for i in 0..512 {
                    obs.observe(tid, i * 8, 8, true);
                }
            }
        }
        let (plan, cov) = obs.derive();
        assert_eq!(cov.coalesce_entries, 1);
        assert_eq!(cov.elide_entries, 0);
        assert_eq!(cov.coalesce_bytes, 4096);
        let compiled = plan.compile().unwrap();
        assert_eq!(compiled.lookup(64, 8), Some(PlanDecision::Coalesce));
    }

    #[test]
    fn shared_random_accesses_become_batch() {
        let mut obs = PlanObserver::new();
        // Two threads ping-pong over the same cells with scattered
        // (non-sequential) writes.
        for i in 0..256 {
            let addr = (i % 64) * 16;
            obs.observe((i % 2) as u32, addr, 8, i % 3 == 0);
        }
        let (plan, cov) = obs.derive();
        assert!(cov.batch_entries > 0, "{cov:?}");
        assert_eq!(cov.elide_bytes, 0);
        for e in &plan.entries {
            assert_ne!(e.action, PlanAction::Elide);
        }
    }

    #[test]
    fn mixed_footprint_splits_by_class_and_owner() {
        let mut obs = PlanObserver::new();
        // Adjacent private regions with different owners must not merge.
        for i in 0..8 {
            obs.observe(0, i * 8, 8, true);
            obs.observe(1, 64 + i * 8, 8, true);
        }
        let (plan, cov) = obs.derive();
        assert_eq!(cov.elide_entries, 2, "{plan:?}");
        let compiled = plan.compile().unwrap();
        assert_eq!(
            compiled.lookup(0, 8),
            Some(PlanDecision::Elide { owner: 0 })
        );
        assert_eq!(
            compiled.lookup(64, 8),
            Some(PlanDecision::Elide { owner: 1 })
        );
    }

    #[test]
    fn coverage_renders_percentages() {
        let mut obs = PlanObserver::new();
        obs.observe(0, 0, 8, true);
        let (_, cov) = obs.derive();
        let text = cov.render();
        assert!(text.contains("elide"), "{text}");
        assert!(text.contains("100.0%"), "{text}");
    }

    #[test]
    fn empty_observer_derives_empty_plan() {
        let (plan, cov) = PlanObserver::new().derive();
        assert!(plan.is_empty());
        assert_eq!(cov.total_bytes(), 0);
        assert_eq!(cov.render().lines().count(), 4);
    }
}
