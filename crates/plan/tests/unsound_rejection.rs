//! Property tests for the plan load-time soundness gate: a plan whose
//! elide witness does not prove thread-privacy must be rejected by
//! `validate`/`parse`/`compile`, never silently applied — and sound
//! plans must survive a full text round trip unchanged.

use clean_plan::{CheckPlan, PlanAction, PlanDecision, PlanEntry, PlanError, Witness};
use proptest::prelude::*;

fn arb_range() -> impl Strategy<Value = (usize, usize)> {
    (0usize..1 << 20, 1usize..1 << 12).prop_map(|(lo, len)| (lo, lo + len))
}

fn arb_action() -> impl Strategy<Value = PlanAction> {
    (0u32..3).prop_map(|k| match k {
        0 => PlanAction::Elide,
        1 => PlanAction::Coalesce,
        _ => PlanAction::Batch,
    })
}

/// Disjoint sound entries: range k lives in its own 2^20-aligned slab.
fn sound_plan() -> impl Strategy<Value = CheckPlan> {
    proptest::collection::vec((arb_range(), arb_action(), 0u32..8, 1u64..1 << 30), 1..8).prop_map(
        |ranges| CheckPlan {
            profile: None,
            entries: ranges
                .into_iter()
                .enumerate()
                .map(|(k, ((lo, hi), action, owner, observed))| PlanEntry {
                    lo: (k << 21) + lo,
                    hi: (k << 21) + hi,
                    action,
                    witness: (action == PlanAction::Elide).then_some(Witness {
                        owner,
                        observed,
                        foreign: 0,
                    }),
                })
                .collect(),
        },
    )
}

proptest! {
    /// Any nonzero foreign count on any elide entry fails validation
    /// with `UnsoundElide`, regardless of where in the plan it sits.
    #[test]
    fn foreign_witness_is_always_rejected(
        plan in sound_plan(),
        victim in 0usize..8,
        foreign in 1u64..1 << 30,
    ) {
        let mut plan = plan;
        // Force at least one elide entry, then poison one of them.
        if !plan.entries.iter().any(|e| e.action == PlanAction::Elide) {
            let e = &mut plan.entries[0];
            e.action = PlanAction::Elide;
            e.witness = Some(Witness { owner: 0, observed: 1, foreign: 0 });
        }
        let elide_idxs: Vec<usize> = plan
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.action == PlanAction::Elide)
            .map(|(i, _)| i)
            .collect();
        let idx = elide_idxs[victim % elide_idxs.len()];
        let w = plan.entries[idx].witness.as_mut().unwrap();
        w.foreign = foreign;

        prop_assert!(matches!(plan.validate(), Err(PlanError::UnsoundElide { .. })));
        prop_assert!(plan.compile().is_err(), "unsound plan must not compile");
        // The text form is rejected at parse too: the poisoned witness
        // round-trips into the file and the loader refuses it.
        prop_assert!(matches!(
            CheckPlan::parse(&plan.render()),
            Err(PlanError::UnsoundElide { .. })
        ));
    }

    /// Witness-free and zero-observation elides are equally unsound.
    #[test]
    fn evidence_free_elides_are_rejected(
        (lo, hi) in arb_range(),
        strip in proptest::bool::ANY,
        owner in 0u32..8,
    ) {
        let entry = PlanEntry {
            lo,
            hi,
            action: PlanAction::Elide,
            witness: if strip {
                None
            } else {
                Some(Witness { owner, observed: 0, foreign: 0 })
            },
        };
        let plan = CheckPlan { profile: None, entries: vec![entry] };
        prop_assert!(matches!(plan.validate(), Err(PlanError::UnsoundElide { .. })));
        prop_assert!(plan.compile().is_err());
    }

    /// Sound plans round-trip through text and compile; every compiled
    /// elide decision carries its witness owner.
    #[test]
    fn sound_plans_round_trip_and_compile(plan in sound_plan()) {
        plan.validate().unwrap();
        let back = CheckPlan::parse(&plan.render()).unwrap();
        prop_assert_eq!(&back, &plan);
        let compiled = plan.compile().unwrap();
        for e in &plan.entries {
            let hit = compiled.lookup(e.lo, 1).unwrap();
            match (e.action, hit) {
                (PlanAction::Elide, PlanDecision::Elide { owner }) => {
                    prop_assert_eq!(owner, e.witness.unwrap().owner);
                }
                (PlanAction::Coalesce, PlanDecision::Coalesce) => {}
                (PlanAction::Batch, PlanDecision::Batch) => {}
                (a, d) => prop_assert!(false, "action {a:?} compiled to {d:?}"),
            }
        }
    }
}
