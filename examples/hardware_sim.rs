//! Drive the hardware-CLEAN simulator on one benchmark model and print
//! the Figure 9/10-style report: slowdown over the no-detection baseline
//! and the access-classification breakdown.
//!
//! Run with: `cargo run --release --example hardware_sim [benchmark]`
//! (default benchmark: dedup — the paper's worst case).

use clean::sim::{EpochMode, Machine, MachineConfig};
use clean::workloads::{benchmark, generate_trace, TraceGenConfig};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "dedup".into());
    let profile = benchmark(&name).unwrap_or_else(|| {
        eprintln!("unknown benchmark {name:?}; see clean::workloads::BENCHMARKS");
        std::process::exit(1);
    });
    let cfg = TraceGenConfig::default();
    println!(
        "generating {} trace ({} threads, {} shared accesses/thread)...",
        profile.name, cfg.threads, cfg.accesses_per_thread
    );
    let trace = generate_trace(profile, &cfg);

    let base = Machine::new(MachineConfig::baseline()).run(&trace);
    let det = Machine::new(MachineConfig::with_detection(EpochMode::CleanCompact)).run(&trace);
    let hw = det.hw.expect("detection enabled");

    println!("\nbaseline:  {:>12} cycles", base.cycles);
    println!("with CLEAN: {:>12} cycles", det.cycles);
    println!(
        "slowdown:   {:>11.1}%  (paper average 10.4%, max 46.7% for dedup)",
        (det.cycles as f64 / base.cycles as f64 - 1.0) * 100.0
    );

    let total = hw.total() as f64;
    println!("\naccess breakdown (Figure 10 left):");
    for (label, v) in [
        ("private", hw.private),
        ("fast", hw.fast),
        ("VC load", hw.vc_load),
        ("update", hw.update),
        ("VC load+update", hw.vc_load_update),
        ("expand", hw.expand),
    ] {
        println!("  {label:<16} {:>6.2}%", v as f64 / total * 100.0);
    }
    let checked = (hw.compact_accesses + hw.expanded_accesses).max(1) as f64;
    println!("\nmetadata line state (Figure 10 right):");
    println!(
        "  compact  {:>6.2}%",
        hw.compact_accesses as f64 / checked * 100.0
    );
    println!(
        "  expanded {:>6.2}%",
        hw.expanded_accesses as f64 / checked * 100.0
    );
    println!(
        "\nLLC miss rate: baseline {:.2}%, with metadata {:.2}%",
        base.mem.llc_miss_rate() * 100.0,
        det.mem.llc_miss_rate() * 100.0
    );
    println!(
        "races detected: {} (performance traces are race-free)",
        hw.races
    );
}
