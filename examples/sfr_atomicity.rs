//! SFR write-atomicity — reproducing the paper's Figure 1b scenario.
//!
//! On a 32-bit machine, storing a 64-bit value takes two instructions; a
//! concurrent store of another 64-bit value can interleave and leave the
//! variable holding a half-half "out of thin air" value (0x100000001 in
//! the paper's example) that appears nowhere in the program.
//!
//! Under CLEAN this cannot be observed: the two halves are two writes of
//! one synchronization-free region, unordered writes to the same data are
//! a WAW race, and the execution stops before a mixed value can be read.
//!
//! Run with: `cargo run --example sfr_atomicity`

use clean::core::RaceKind;
use clean::runtime::{CleanError, CleanRuntime, RuntimeConfig};

fn main() -> Result<(), CleanError> {
    // x is a 64-bit variable stored as two 32-bit halves, modelling the
    // paper's 32-bit machine.
    let rt = CleanRuntime::new(RuntimeConfig::new().heap_size(4096).max_threads(4));
    let x = rt.alloc_array::<u32>(2)?;

    println!("Thread 1 stores x = 0x1_0000_0000 (high then low half)");
    println!("Thread 2 stores x = 0x1          (high then low half)");
    println!("Racy hardware can produce x == 0x1_0000_0001 — a value no thread wrote.\n");

    let result = rt.run(|ctx| {
        let t1 = ctx.spawn(move |c| {
            // x = 0x100000000: high = 1, low = 0.
            c.write(&x, 1, 1u32)?;
            c.write(&x, 0, 0u32)?;
            Ok(())
        })?;
        let t2 = ctx.spawn(move |c| {
            // x = 0x1: high = 0, low = 1.
            c.write(&x, 1, 0u32)?;
            c.write(&x, 0, 1u32)?;
            Ok(())
        })?;
        let _ = ctx.join(t1)?;
        let _ = ctx.join(t2)?;
        let lo = ctx.read(&x, 0)?;
        let hi = ctx.read(&x, 1)?;
        Ok(u64::from(hi) << 32 | u64::from(lo))
    });

    match result {
        Err(CleanError::Race(r)) => {
            assert_eq!(r.kind, RaceKind::WriteAfterWrite);
            println!("CLEAN raised the race exception instead:\n  {r}");
            println!("\nNo interleaved half-half value can ever be observed: unordered");
            println!("writes to the same data stop the execution (SFR write-atomicity).");
        }
        Ok(v) => {
            // Only reachable if the OS scheduler fully serialized one SFR
            // after the other *and* the race was still flagged — CLEAN
            // never lets an unordered pair through silently, so getting
            // here means first_race() must be set.
            println!("final x = {v:#x}; first race: {:?}", rt.first_race());
            assert!(rt.first_race().is_some(), "the WAW race is always caught");
        }
        Err(e) => println!("stopped: {e}"),
    }
    Ok(())
}
