//! Deterministic multithreaded replicas — the Section 3.1.2 use case.
//!
//! A replica-based fault-tolerance system runs the same request batch on
//! several replicas and compares results by quorum. With ordinary
//! threading, a race-free program can still answer differently per
//! replica (lock-acquisition order changes accumulation order); under
//! CLEAN every exception-free replica produces bit-identical state, so
//! "correct" (all that finish agree) and "incorrect" (race exception) are
//! trivially distinguishable.
//!
//! The workload is a tiny bank: workers withdraw/deposit across accounts
//! under per-account locks; the final balance vector is the replica's
//! answer.
//!
//! Run with: `cargo run --example deterministic_replicas`

use clean::runtime::{CleanError, CleanRuntime, RuntimeConfig};

const ACCOUNTS: usize = 8;
const WORKERS: usize = 4;
const TRANSFERS: usize = 60;

fn run_replica(det_sync: bool) -> Result<(u64, u64), CleanError> {
    let rt = CleanRuntime::new(
        RuntimeConfig::new()
            .heap_size(1 << 16)
            .max_threads(8)
            .det_sync(det_sync),
    );
    let balances = rt.alloc_array::<u64>(ACCOUNTS)?;
    let locks: Vec<_> = (0..ACCOUNTS).map(|_| rt.create_mutex()).collect();
    let state_hash = rt.run(|ctx| {
        for a in 0..ACCOUNTS {
            ctx.write(&balances, a, 1_000)?;
        }
        let mut kids = Vec::new();
        for w in 0..WORKERS {
            let locks = locks.clone();
            kids.push(ctx.spawn(move |c| {
                let mut x = (w as u64 + 1) * 0x9e37_79b9;
                for _ in 0..TRANSFERS {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let from = (x % ACCOUNTS as u64) as usize;
                    let to = ((x >> 16) % ACCOUNTS as u64) as usize;
                    if from == to {
                        continue;
                    }
                    // Ordered two-lock protocol (no deadlock).
                    let (lo, hi) = (from.min(to), from.max(to));
                    c.lock(&locks[lo])?;
                    c.lock(&locks[hi])?;
                    let bf = c.read(&balances, from)?;
                    // Transfer amount depends on the *current* balance, so
                    // transfer order affects the final state.
                    let amount = bf / 10;
                    c.write(&balances, from, bf - amount)?;
                    let bt = c.read(&balances, to)?;
                    c.write(&balances, to, bt + amount)?;
                    c.unlock(&locks[hi])?;
                    c.unlock(&locks[lo])?;
                    c.tick(5);
                }
                Ok(())
            })?);
        }
        for k in kids {
            ctx.join(k)??;
        }
        let mut h = 0u64;
        let mut total = 0u64;
        for a in 0..ACCOUNTS {
            let b = ctx.read(&balances, a)?;
            total += b;
            h = h.rotate_left(7) ^ b;
        }
        assert_eq!(total, ACCOUNTS as u64 * 1_000, "money is conserved");
        Ok(h)
    })?;
    Ok((state_hash, rt.stats().digest()))
}

fn main() -> Result<(), CleanError> {
    println!("--- 4 replicas WITHOUT deterministic synchronization ---");
    let mut answers = Vec::new();
    for r in 1..=4 {
        let (h, _) = run_replica(false)?;
        println!("replica {r}: state hash {h:#018x}");
        answers.push(h);
    }
    let agree = answers.windows(2).all(|w| w[0] == w[1]);
    println!(
        "replicas agree: {agree} (race-free, but lock order is timing-dependent —\n\
         a quorum can split even though no replica misbehaved)\n"
    );

    println!("--- 4 replicas WITH CLEAN (Kendo deterministic synchronization) ---");
    let mut answers = Vec::new();
    for r in 1..=4 {
        let (h, digest) = run_replica(true)?;
        println!("replica {r}: state hash {h:#018x}, digest {digest:#018x}");
        answers.push(h);
    }
    assert!(
        answers.windows(2).all(|w| w[0] == w[1]),
        "CLEAN replicas must agree"
    );
    println!("replicas agree: true (every exception-free execution is deterministic)");
    Ok(())
}
