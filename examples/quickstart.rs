//! Quickstart: catch a data race as a first-class exception.
//!
//! Two threads update a shared counter. The buggy version forgets the
//! lock: CLEAN stops the execution at the first WAW/RAW race and reports
//! exactly which threads collided where. The fixed version completes —
//! and, thanks to deterministic synchronization, produces the same result
//! on every run.
//!
//! Run with: `cargo run --example quickstart`

use clean::runtime::{CleanError, CleanRuntime, RuntimeConfig, SharedArray};

fn buggy(rt: &CleanRuntime, counter: SharedArray<u64>) -> Result<u64, CleanError> {
    rt.run(|ctx| {
        let mut kids = Vec::new();
        for _ in 0..2 {
            kids.push(ctx.spawn(move |c| {
                for _ in 0..100 {
                    let v = c.read(&counter, 0)?; // racy read-modify-write
                    c.write(&counter, 0, v + 1)?;
                }
                Ok(())
            })?);
        }
        for k in kids {
            ctx.join(k)??;
        }
        ctx.read(&counter, 0)
    })
}

fn fixed(rt: &CleanRuntime, counter: SharedArray<u64>) -> Result<u64, CleanError> {
    let lock = rt.create_mutex();
    rt.run(|ctx| {
        let mut kids = Vec::new();
        for _ in 0..2 {
            let lock = lock.clone();
            kids.push(ctx.spawn(move |c| {
                for _ in 0..100 {
                    c.lock(&lock)?;
                    let v = c.read(&counter, 0)?;
                    c.write(&counter, 0, v + 1)?;
                    c.unlock(&lock)?;
                }
                Ok(())
            })?);
        }
        for k in kids {
            ctx.join(k)??;
        }
        ctx.lock(&lock)?;
        let v = ctx.read(&counter, 0)?;
        ctx.unlock(&lock)?;
        Ok(v)
    })
}

fn main() -> Result<(), CleanError> {
    println!("--- buggy version (no lock) ---");
    let rt = CleanRuntime::new(RuntimeConfig::new().heap_size(4096).max_threads(4));
    let counter = rt.alloc_array::<u64>(1)?;
    match buggy(&rt, counter) {
        Err(CleanError::Race(report)) => {
            println!("race exception: {report}");
            println!("(the execution was stopped at the FIRST race — no silent corruption)");
        }
        other => println!("unexpected: {other:?} (first race: {:?})", rt.first_race()),
    }

    println!("\n--- fixed version (lock-protected) ---");
    for run in 1..=3 {
        let rt = CleanRuntime::new(RuntimeConfig::new().heap_size(4096).max_threads(4));
        let counter = rt.alloc_array::<u64>(1)?;
        let total = fixed(&rt, counter)?;
        println!(
            "run {run}: total = {total}, execution digest = {:#018x}",
            rt.stats().digest()
        );
    }
    println!("(identical digests: exception-free executions are deterministic)");
    Ok(())
}
