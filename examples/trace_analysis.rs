//! Record a live execution and replay it through all four detector
//! algorithms — CLEAN, FastTrack, the classic two-vector-clock detector
//! and the TSan-like imprecise detector — comparing verdicts and cost.
//!
//! This is the Section 3.1.2 debugging workflow: "if a program execution
//! does trigger a race exception, a precise race detector can be used
//! alongside CLEAN in subsequent runs to systematically detect all
//! races."
//!
//! Run with: `cargo run --release --example trace_analysis`

use clean::baselines::{
    run_detector, CleanEngine, FastTrack, TraceDetector, TsanLike, VcFullDetector,
};
use clean::runtime::{CleanRuntime, RuntimeConfig};
use clean::workloads::{benchmark, run_benchmark, KernelParams};

fn analyze(name: &str, racy: bool) {
    let profile = benchmark(name).unwrap();
    let rt = CleanRuntime::new(
        RuntimeConfig::new()
            .heap_size(1 << 22)
            .max_threads(12)
            .record_trace(true),
    );
    let result = run_benchmark(profile, &rt, &KernelParams::new().threads(3).racy(racy));
    let trace = rt.recorded_trace().expect("recording enabled");
    println!(
        "\n=== {name} ({}) — {} recorded events ===",
        if racy {
            "unmodified, racy"
        } else {
            "race-free"
        },
        trace.len()
    );
    match (&result, rt.first_race()) {
        (_, Some(race)) => println!("online CLEAN verdict: RACE — {race}"),
        (Ok(hash), None) => println!("online CLEAN verdict: clean (output hash {hash:#x})"),
        (Err(e), None) => println!("online CLEAN: error {e}"),
    }

    let mut clean = CleanEngine::new(12);
    let mut ft = FastTrack::new(12);
    let mut vc = VcFullDetector::new(12);
    let mut ts = TsanLike::new(12);
    let c = run_detector(&mut clean, &trace);
    let f = run_detector(&mut ft, &trace);
    let v = run_detector(&mut vc, &trace);
    let t = run_detector(&mut ts, &trace);
    println!("offline replay of the recorded interleaving:");
    println!(
        "  clean      : {:>3} races, {:>9} clock comparisons, {:>8} B metadata",
        c.len(),
        clean.comparisons(),
        clean.metadata_bytes()
    );
    println!(
        "  fasttrack  : {:>3} races, {:>9} clock comparisons, {:>8} B metadata ({} read-VC inflations)",
        f.len(),
        ft.comparisons(),
        ft.metadata_bytes(),
        ft.read_vc_inflations()
    );
    println!(
        "  vc-full    : {:>3} races, {:>9} clock comparisons, {:>8} B metadata",
        v.len(),
        vc.comparisons(),
        vc.metadata_bytes()
    );
    println!(
        "  tsan-like  : {:>3} races, {:>9} clock comparisons, {:>8} B metadata ({} evictions)",
        t.len(),
        ts.comparisons(),
        ts.metadata_bytes(),
        ts.evictions()
    );
    if let Some(first) = f.first() {
        println!(
            "  first FastTrack race: {:?} at {:#x} ({} vs {})",
            first.kind, first.addr, first.current, first.previous
        );
    }
}

fn main() {
    analyze("streamcluster", false);
    analyze("water_nsquared", true);
    println!(
        "\nNote how CLEAN's comparison count tracks accesses one-to-one while\n\
         the full detectors pay for WAR checks, and how the TSan-like design\n\
         trades missed races (evictions) for bounded metadata."
    );
}
