//! # clean
//!
//! A from-scratch Rust reproduction of **"CLEAN: A Race Detector with
//! Cleaner Semantics"** (Segulja & Abdelrahman, ISCA 2015).
//!
//! CLEAN precisely detects only write-after-write (WAW) and
//! read-after-write (RAW) data races — raising a *race exception* that
//! stops the execution on the first occurrence — and orders
//! synchronization operations deterministically with the Kendo algorithm.
//! That combination guarantees, for **every** execution:
//!
//! * synchronization-free regions appear to execute in isolation,
//! * their writes appear atomic (no "out of thin air" values),
//! * and exception-free executions are fully deterministic,
//!
//! while skipping the one race class (WAR) whose detection makes full
//! precise detectors expensive.
//!
//! This facade crate re-exports the workspace:
//!
//! * [`core`]: epochs, vector clocks, shadow memory, the Figure 2 race
//!   check, rollover coordination ([`clean_core`]),
//! * [`plan`]: the CPLN static check-plan format — elide/coalesce/batch
//!   ranges with soundness witnesses — and its compiler ([`clean_plan`]),
//! * [`sync`]: deterministic mutex/barrier/condvar and thread registry
//!   ([`clean_sync`]),
//! * [`runtime`]: the software-only CLEAN runtime — monitored threads,
//!   checked shared heap, race exceptions ([`clean_runtime`]),
//! * [`baselines`]: FastTrack, two-vector-clock and TSan-like detectors
//!   ([`clean_baselines`]),
//! * [`sim`]: the trace-driven multicore simulator with the hardware
//!   check unit ([`clean_sim`]),
//! * [`workloads`]: the 26 SPLASH-2/PARSEC benchmark models
//!   ([`clean_workloads`]),
//! * [`trace`]: the persistent binary trace store with sharded parallel
//!   offline analysis and the `clean-analyze` CLI ([`clean_trace`]),
//! * [`sched`]: the controlled-scheduler VM with exhaustive/PCT schedule
//!   exploration, differential detector checking, schedule tokens,
//!   shrinking, and the `clean-sched` CLI ([`clean_sched`]),
//! * [`serve`]: the concurrent race-analysis service — digest-addressed
//!   trace store, admission-controlled job queue, verdict cache, and the
//!   `clean-serve` daemon/client CLI ([`clean_serve`]).
//!
//! # Quickstart
//!
//! ```
//! use clean::runtime::{CleanRuntime, RuntimeConfig, CleanError};
//!
//! let rt = CleanRuntime::new(RuntimeConfig::new().heap_size(4096).max_threads(4));
//! let x = rt.alloc_array::<u32>(1)?;
//! let result = rt.run(|ctx| {
//!     let child = ctx.spawn(move |c| c.write(&x, 0, 1u32))?;
//!     ctx.write(&x, 0, 2u32)?; // unordered with the child's write
//!     ctx.join(child)??;
//!     Ok(())
//! });
//! // The WAW race raises CLEAN's race exception.
//! assert!(matches!(result, Err(CleanError::Race(_))) || rt.first_race().is_some());
//! # Ok::<(), CleanError>(())
//! ```

#![warn(missing_docs)]

pub use clean_baselines as baselines;
pub use clean_core as core;
pub use clean_plan as plan;
pub use clean_runtime as runtime;
pub use clean_sched as sched;
pub use clean_serve as serve;
pub use clean_sim as sim;
pub use clean_sync as sync;
pub use clean_trace as trace;
pub use clean_workloads as workloads;
