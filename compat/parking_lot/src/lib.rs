//! Offline stand-in for the `parking_lot` crate.
//!
//! This container builds with no crates.io access, so the workspace
//! replaces its external dependencies with API-compatible shims (see
//! `compat/README.md`). This one maps the `parking_lot` subset the
//! workspace uses onto `std::sync` primitives:
//!
//! * [`Mutex`] / [`MutexGuard`] — non-poisoning `lock()` (poison is
//!   swallowed with `PoisonError::into_inner`, matching `parking_lot`'s
//!   panic-transparent behaviour),
//! * [`Condvar`] — `wait(&mut guard)` in-place re-lock semantics.
//!
//! Performance differs from the real `parking_lot` (std mutexes are
//! futex-based on Linux and close enough for the experiments here), but
//! the semantics relied upon by this workspace are identical.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual exclusion primitive (shim over [`std::sync::Mutex`]).
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

/// RAII guard of a locked [`Mutex`] (shim over [`std::sync::MutexGuard`]).
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. Unlike
    /// `std`, never returns a poison error.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_tuple("Mutex").field(&&*g).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard holds the lock")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard holds the lock")
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A condition variable (shim over [`std::sync::Condvar`]) with
/// `parking_lot`'s `wait(&mut guard)` signature.
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Atomically releases the guard's lock and waits for a
    /// notification, re-acquiring the lock before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard holds the lock");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(PoisonError::into_inner));
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_mutate_unlock() {
        let m = Mutex::new(1u32);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn try_lock_contended() {
        let m = Mutex::new(0u8);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
