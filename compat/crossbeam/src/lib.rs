//! Offline stand-in for the `crossbeam` crate (the subset this
//! workspace uses: scoped threads).
//!
//! The container has no crates.io access, so the workspace replaces
//! external dependencies with API-compatible shims (see
//! `compat/README.md`). This one maps `crossbeam::thread::scope` onto
//! [`std::thread::scope`], preserving crossbeam's signature quirks:
//! the entry closure and each spawned closure receive a `&Scope`
//! (allowing nested spawns), and `scope` returns a
//! [`std::thread::Result`] that is `Err` if the entry closure panics.

pub mod thread {
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Handle for spawning threads tied to an enclosing [`scope`].
    #[derive(Clone, Copy)]
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a thread spawned in a [`scope`].
    pub struct ScopedJoinHandle<'scope, T>(std::thread::ScopedJoinHandle<'scope, T>);

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives this scope so
        /// it can spawn further threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle(self.inner.spawn(move || f(&scope)))
        }
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result or the
        /// panic payload.
        pub fn join(self) -> std::thread::Result<T> {
            self.0.join()
        }
    }

    /// Creates a scope within which all spawned threads are joined
    /// before `scope` returns. Unjoined panicking children propagate
    /// their panic (as in `std`); a panic in `f` itself is caught and
    /// returned as `Err`, matching crossbeam.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        catch_unwind(AssertUnwindSafe(|| {
            std::thread::scope(|s| f(&Scope { inner: s }))
        }))
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU32, Ordering};

    #[test]
    fn scoped_threads_borrow_stack_data() {
        let counter = AtomicU32::new(0);
        let counter = &counter;
        let sum = crate::thread::scope(|s| {
            let handles: Vec<_> = (0..4u32)
                .map(|i| {
                    s.spawn(move |_| {
                        counter.fetch_add(1, Ordering::Relaxed);
                        i * 10
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u32>()
        })
        .unwrap();
        assert_eq!(sum, 60);
        assert_eq!(counter.load(Ordering::Relaxed), 4);
    }

    #[test]
    fn nested_spawn_via_passed_scope() {
        let out = crate::thread::scope(|s| {
            s.spawn(|s2| s2.spawn(|_| 7u8).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(out, 7);
    }

    #[test]
    fn entry_panic_becomes_err() {
        let r = crate::thread::scope(|_| panic!("boom"));
        assert!(r.is_err());
    }
}
