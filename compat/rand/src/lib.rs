//! Offline stand-in for the `rand` crate (the subset this workspace uses).
//!
//! The container has no crates.io access, so the workspace replaces
//! external dependencies with API-compatible shims (see
//! `compat/README.md`). This shim provides:
//!
//! * [`RngCore`] / [`Rng`] with `gen`, `gen_bool`, `gen_range`,
//! * [`SeedableRng::seed_from_u64`],
//! * [`rngs::SmallRng`] — a xoshiro256** generator seeded via SplitMix64.
//!
//! The streams differ from upstream `rand`'s, but every use in this
//! workspace only needs deterministic, well-distributed pseudo-random
//! values for a fixed seed, which this provides.

use std::ops::{Range, RangeInclusive};

/// Minimal core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next pseudo-random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a `u64` seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from an RNG via [`Rng::gen`].
pub trait SampleStandard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Convenience sampling methods, blanket-implemented for all RNGs.
pub trait Rng: RngCore {
    /// Samples a value of an inferred type from the standard
    /// distribution (uniform for ints, `[0, 1)` for floats).
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} not a probability");
        f64::sample(self) < p
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator: xoshiro256**.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with SplitMix64, as upstream rand does.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }
}

/// Re-exports mirroring `rand::prelude`.
pub mod prelude {
    pub use super::rngs::SmallRng;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_for_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(3..17u32);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0..=4usize);
            assert!(w <= 4);
        }
    }

    #[test]
    fn gen_bool_extremes_and_f64_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = [0u32; 4];
        for _ in 0..4000 {
            counts[rng.gen_range(0..4usize)] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "skewed bucket: {counts:?}");
        }
    }
}
