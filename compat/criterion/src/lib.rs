//! Offline stand-in for the `criterion` crate (the subset this
//! workspace's benches use).
//!
//! The container has no crates.io access, so the workspace replaces
//! external dependencies with API-compatible shims (see
//! `compat/README.md`). This one keeps `cargo bench` compiling and
//! producing wall-clock timings: each benchmark runs a short
//! fixed-iteration measurement loop and prints mean time per
//! iteration. There is no statistical analysis, warm-up tuning, or
//! HTML report — numbers are indicative, not criterion-grade.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

const MEASURE_ITERS: u64 = 50;

/// Entry point handed to benchmark functions by `criterion_main!`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("group: {name}");
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, &mut f);
        self
    }
}

/// A named set of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs a benchmark within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, f: &mut F) {
    let mut b = Bencher {
        elapsed: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    let per_iter = if b.iters > 0 {
        b.elapsed / b.iters as u32
    } else {
        Duration::ZERO
    };
    println!("bench: {id:<48} {per_iter:>12.3?}/iter ({} iters)", b.iters);
}

/// Batch sizing hint for `iter_batched` (ignored by this shim).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
    NumIterations(u64),
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..MEASURE_ITERS {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += MEASURE_ITERS;
    }

    /// Times `routine` on fresh inputs from `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..MEASURE_ITERS {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iters += 1;
        }
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.bench_function("iter", |b| b.iter(|| black_box(2u64) * 21));
        g.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn group_runs_to_completion() {
        benches();
    }
}
