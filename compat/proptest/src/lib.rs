//! Offline stand-in for the `proptest` crate (the subset this
//! workspace uses).
//!
//! The container has no crates.io access, so the workspace replaces
//! external dependencies with API-compatible shims (see
//! `compat/README.md`). This one implements randomized property
//! testing with the same surface syntax as upstream `proptest`:
//!
//! * [`Strategy`] with `prop_map`/`boxed`, implemented for integer
//!   ranges, tuples, and collections ([`collection::vec`]),
//! * `proptest! { ... }` with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(N))]` header,
//! * `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`,
//!   `prop_assert_ne!`, and a [`prelude`] exporting the `prop` alias.
//!
//! Differences from upstream: no shrinking (a failing case panics with
//! the generated inputs unreduced) and no persisted failure seeds. Each
//! test's seed is derived from its name, so runs are deterministic.

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

pub mod test_runner {
    /// Deterministic generator driving value generation (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng(u64);

    impl TestRng {
        pub fn new(seed: u64) -> Self {
            TestRng(seed)
        }

        pub fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

use test_runner::TestRng;

/// Derives a per-test seed from the test's name (deterministic runs).
#[doc(hidden)]
pub fn __seed_for(name: &str) -> u64 {
    // FNV-1a.
    let mut h = 0xcbf29ce484222325u64;
    for b in name.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x100000001b3);
    }
    h
}

/// Reads `CLEAN_TEST_SEED` (default 0). XORed into every per-test seed,
/// so the default run stays byte-identical to the name-derived schedule
/// while any failure is reproducible by exporting the printed value.
#[doc(hidden)]
pub fn __env_seed() -> u64 {
    std::env::var("CLEAN_TEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0)
}

/// Drop guard that prints the failing test's seed and a one-line repro
/// command if the property body panics.
#[doc(hidden)]
pub struct __SeedGuard {
    pub name: &'static str,
    pub env_seed: u64,
    pub case: u32,
}

impl Drop for __SeedGuard {
    fn drop(&mut self) {
        if std::thread::panicking() {
            let short = self.name.rsplit("::").next().unwrap_or(self.name);
            eprintln!(
                "proptest failure in {} (case {}, CLEAN_TEST_SEED={})\n\
                 repro: CLEAN_TEST_SEED={} cargo test {short}",
                self.name, self.case, self.env_seed, self.env_seed
            );
        }
    }
}

/// Controls how many cases each property runs.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> strategy::Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        strategy::Map { inner: self, f }
    }

    /// Erases the strategy's concrete type.
    fn boxed(self) -> strategy::BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        strategy::BoxedStrategy(Rc::new(move |rng: &mut TestRng| self.new_value(rng)))
    }
}

pub mod strategy {
    use super::{Strategy, TestRng};
    use std::rc::Rc;

    /// See [`Strategy::prop_map`].
    #[derive(Clone)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    /// See [`Strategy::boxed`].
    pub struct BoxedStrategy<V>(pub(crate) Rc<dyn Fn(&mut TestRng) -> V>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            (self.0)(rng)
        }
    }

    /// Uniform choice between alternative strategies (`prop_oneof!`).
    pub struct Union<V>(Vec<BoxedStrategy<V>>);

    impl<V> Union<V> {
        pub fn new(arms: Vec<BoxedStrategy<V>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union(arms)
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn new_value(&self, rng: &mut TestRng) -> V {
            let idx = (rng.next_u64() % self.0.len() as u64) as usize;
            self.0[idx].new_value(rng)
        }
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn new_value(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        // 53-bit uniform in [0, 1), scaled into the range.
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + (self.end - self.start) * unit
    }
}

macro_rules! impl_tuple_strategy {
    ($($s:ident),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.new_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy yielding uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    impl Strategy for Any {
        type Value = bool;
        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    pub const ANY: Any = Any;
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Element-count bound for [`vec`]; converts from `usize` (exact
    /// length) and from half-open/inclusive ranges.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // inclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// See [`vec`].
    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % (span + 1)) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Generates vectors whose elements come from `element` and whose
    /// length falls within `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    pub use crate::{ProptestConfig, Strategy};

    /// Alias module mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::bool;
        pub use crate::collection;
        pub use crate::strategy;
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (cfg = $cfg:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let env_seed = $crate::__env_seed();
                let mut rng = $crate::test_runner::TestRng::new(
                    $crate::__seed_for(concat!(module_path!(), "::", stringify!($name)))
                        ^ env_seed,
                );
                for __case in 0..config.cases {
                    let mut __guard = $crate::__SeedGuard {
                        name: concat!(module_path!(), "::", stringify!($name)),
                        env_seed,
                        case: __case,
                    };
                    $(let $pat = $crate::Strategy::new_value(&($strat), &mut rng);)+
                    $body
                    __guard.case = __case; // keep the guard alive past the body
                }
            }
        )*
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            panic!("property failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!($($fmt)+);
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(, $($fmt:tt)+)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "property failed: {:?} != {:?}{}",
            l,
            r,
            $crate::__ctx!($($($fmt)+)?)
        );
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(, $($fmt:tt)+)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "property failed: {:?} == {:?}{}",
            l,
            r,
            $crate::__ctx!($($($fmt)+)?)
        );
    }};
}

#[doc(hidden)]
#[macro_export]
macro_rules! __ctx {
    () => {
        String::new()
    };
    ($($fmt:tt)+) => {
        format!(": {}", format!($($fmt)+))
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn composite() -> impl Strategy<Value = (u32, bool)> {
        (0u32..100, prop::bool::ANY)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Ranges stay in bounds.
        #[test]
        fn ranges_in_bounds(x in 3u16..=9, y in 0usize..10) {
            prop_assert!((3..=9).contains(&x));
            prop_assert!(y < 10, "y={} escaped", y);
        }

        /// Vec strategy respects length bounds; map applies.
        #[test]
        fn vec_and_map(v in prop::collection::vec((0u8..4).prop_map(|b| b * 2), 1..6)) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|b| b % 2 == 0 && *b < 8));
        }

        /// Oneof picks only listed alternatives; tuples compose.
        #[test]
        fn oneof_and_tuple(choice in prop_oneof![(0u32..1).prop_map(|_| "a"), (0u32..1).prop_map(|_| "b")], pair in composite()) {
            prop_assert!(choice == "a" || choice == "b");
            prop_assert!(pair.0 < 100);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn assert_eq_reports_failure() {
        let run = || -> () {
            prop_assert_eq!(1u8, 2u8);
        };
        run();
    }
}
